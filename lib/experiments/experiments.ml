(* The experiment harness: one executable experiment per figure/theorem
   of the paper, as indexed in DESIGN.md and recorded in EXPERIMENTS.md.
   Each experiment computes a structured [output] (typed rows + the
   historical text rendering) and asserts its invariants; printing lives
   in [render].  Shared by bench/main.exe and the `anonet experiments`
   CLI command. *)

open Anonet_graph
open Anonet_views
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Catalog = Anonet_problems.Catalog
module Executor = Anonet_runtime.Executor
module Las_vegas = Anonet_runtime.Las_vegas
module Run_ctx = Anonet_runtime.Run_ctx
module Bundles = Anonet_algorithms.Bundles
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events
open Anonet

module Pool = Anonet_parallel.Pool

type row = {
  experiment : string;
  label : string;
  fields : (string * Events.value) list;
  line : string;
}

type output = {
  id : string;
  title : string;
  prelude : string;
  rows : row list;
  coda : string;
}

let row ~experiment ~label ?(fields = []) line = { experiment; label; fields; line }

let banner title =
  Printf.sprintf "\n=== %s %s\n" title (String.make (max 0 (72 - String.length title)) '=')

(* Row fan-out: graph-family rows are independent, so a domain pool can
   compute them concurrently — each task returns its finished row(s)
   (asserts included), and the rows merge in input order regardless of
   completion order, keeping the output identical to a sequential run. *)
let fan_out ~ctx (tasks : (unit -> 'a) list) : 'a list =
  let tasks = Array.of_list tasks in
  let out =
    match Run_ctx.parallel ctx with
    | Some p -> Pool.map p (fun f -> f ()) tasks
    | None -> Array.map (fun f -> f ()) tasks
  in
  Array.to_list out

let colored_instance g colors = Problem.attach_coloring g colors

let c6_instance () =
  colored_instance (Gen.cycle 6) (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1)))

let prime_instance g = colored_instance g (Array.init (Graph.n g) (fun v -> Label.Int v))

let cycle_mod_colors n k =
  colored_instance (Gen.cycle n) (Array.init n (fun v -> Label.Int (v mod k)))

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — local views                                          *)
(* ------------------------------------------------------------------ *)

let exp_f1 ~ctx:_ () =
  let title = "F1  Figure 1: depth-d local views of the labeled C6" in
  let g = Gen.c6_figure1 () in
  let prelude =
    banner title
    ^ Printf.sprintf "the figure itself — L_3(u0) in C6 colored (1,2,3,1,2,3):\n%s\n"
        (View.to_string (View.of_graph g ~root:0 ~depth:3))
    ^ Printf.sprintf "%5s | %12s | %17s\n" "depth" "tree size" "distinct subtrees"
  in
  let rows =
    List.map
      (fun d ->
        let v = View.of_graph g ~root:0 ~depth:d in
        let k = Anonet.Knowledge.view_of_graph g ~root:0 ~depth:d in
        let size = View.size v in
        let distinct = List.length (Anonet.Knowledge.subtrees k) in
        row ~experiment:"f1"
          ~label:(Printf.sprintf "depth-%d" d)
          ~fields:
            [ "depth", Events.Int d;
              "tree_size", Events.Int size;
              "distinct_subtrees", Events.Int distinct;
            ]
          (Printf.sprintf "%5d | %12d | %17d\n" d size distinct))
      [ 1; 2; 3; 4; 6; 8; 10; 12 ]
  in
  { id = "f1"; title; prelude; rows;
    coda =
      "shape: tree size grows as 2^d (views unfold exponentially); distinct\n\
       subtrees stay <= 3 per level (the 3 view classes of C6).\n";
  }

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 — factor chain                                         *)
(* ------------------------------------------------------------------ *)

let exp_f2 ~ctx:_ () =
  let title = "F2  Figure 2: the C3 <= C6 <= C12 factor chain and beyond" in
  let c12 = Lift.c12_over_c6 () in
  let c6l = Lift.c6_over_c3 () in
  assert (Factor.is_factorizing ~product:c12.Lift.graph ~factor:c12.Lift.base
            ~map:c12.Lift.map);
  assert (Factor.is_factorizing ~product:c6l.Lift.graph ~factor:c6l.Lift.base
            ~map:c6l.Lift.map);
  let prelude =
    banner title
    ^ Printf.sprintf "%-18s | %3s | %5s | %6s | %s\n" "graph" "n" "|V*|" "prime?"
        "prime factor iso to C3?"
  in
  let c3 = c6l.Lift.base in
  let show name g =
    let vg = View_graph.of_graph_exn g in
    let vstar = Graph.n vg.View_graph.graph in
    let prime = vstar = Graph.n g in
    let iso = Iso.equal vg.View_graph.graph c3 in
    row ~experiment:"f2" ~label:name
      ~fields:
        [ "n", Events.Int (Graph.n g);
          "prime_factor_nodes", Events.Int vstar;
          "prime", Events.Bool prime;
          "prime_iso_c3", Events.Bool iso;
        ]
      (Printf.sprintf "%-18s | %3d | %5d | %6b | %b\n" name (Graph.n g) vstar
         prime iso)
  in
  (* generalization: iterated random 2-lifts of C3 *)
  let rec tower g k =
    if k = 0 then []
    else begin
      let l = Lift.random ~seed:(100 + k) g ~k:2 in
      l.Lift.graph :: tower l.Lift.graph (k - 1)
    end
  in
  let rows =
    [ show "C3 (colored)" c3;
      show "C6 (colored)" c6l.Lift.graph;
      show "C12 (colored)" c12.Lift.graph;
    ]
    @ List.mapi
        (fun i g -> show (Printf.sprintf "2^%d-lift of C3" (i + 1)) g)
        (tower c3 3)
  in
  { id = "f2"; title; prelude; rows;
    coda =
      "shape: every product in the tower keeps the same 3-node prime factor\n\
       (Lemma 3: the prime factor of a 2-hop colored graph is unique).\n";
  }

(* ------------------------------------------------------------------ *)
(* F3: Figure 3 / Theorem 1 — A*                                       *)
(* ------------------------------------------------------------------ *)

let exp_f3 ~ctx () =
  let title = "F3  Figure 3 / Theorem 1: the deterministic algorithm A*" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-14s | %-14s | %6s | %8s | %6s\n" "instance" "problem"
        "rounds" "messages" "valid?"
  in
  let run name inst bundle () =
    let pname = bundle.Gran.problem.Problem.name in
    let label = Printf.sprintf "%s/%s" name pname in
    match A_star.solve ~gran:bundle inst () with
    | Error m ->
      row ~experiment:"f3" ~label
        ~fields:[ "error", Events.String m ]
        (Printf.sprintf "%-14s | %-14s | failed: %s\n" name pname m)
    | Ok outcome ->
      let valid =
        bundle.Gran.problem.Problem.is_valid_output
          (Problem.strip_coloring inst) outcome.Executor.outputs
      in
      row ~experiment:"f3" ~label
        ~fields:
          [ "rounds", Events.Int outcome.Executor.rounds;
            "messages", Events.Int outcome.Executor.messages;
            "valid", Events.Bool valid;
          ]
        (Printf.sprintf "%-14s | %-14s | %6d | %8d | %6b\n" name pname
           outcome.Executor.rounds outcome.Executor.messages valid)
  in
  let rows =
    fan_out ~ctx
      (List.concat_map
         (fun (name, inst) ->
           [ run name inst Bundles.mis; run name inst Bundles.coloring ])
         [ "c3-prime", prime_instance (Gen.cycle 3);
           "p3-prime", prime_instance (Gen.path 3);
           "star3-prime", prime_instance (Gen.star 3);
           "c6/3colors", c6_instance ();
           "c12/3colors", cycle_mod_colors 12 3;
         ]
      @ [ run "c6/3colors" (c6_instance ()) Bundles.two_hop_coloring ])
  in
  { id = "f3"; title; prelude; rows;
    coda =
      "shape: round counts track the phase where the first successful\n\
       simulation exists (the paper's z+1), not |V| — c6 and c12 with the\n\
       same 3-color view graph behave alike.\n";
  }

(* ------------------------------------------------------------------ *)
(* T2: Theorem 2 — A∞, cost tracks |V*| not |V|                        *)
(* ------------------------------------------------------------------ *)

let exp_t2 ~ctx () =
  let title = "T2  Theorem 2: A_infinity — cost tracks |V*|, not |V|" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-16s | %4s | %5s | %10s | %9s | %6s\n" "instance" "|V|"
        "|V*|" "sim length" "search st" "valid?"
  in
  let run name inst () =
    match A_infinity.solve ~gran:Bundles.mis inst () with
    | Error m ->
      row ~experiment:"t2" ~label:name
        ~fields:[ "error", Events.String m ]
        (Printf.sprintf "%-16s | failed: %s\n" name m)
    | Ok r ->
      let valid =
        Catalog.mis.Problem.is_valid_output (Problem.strip_coloring inst)
          r.A_infinity.outputs
      in
      let vstar = Graph.n r.A_infinity.view_graph.View_graph.graph in
      let sim_len =
        Bit_assignment.max_length r.A_infinity.found.Min_search.assignment
      in
      let states = r.A_infinity.found.Min_search.states_explored in
      row ~experiment:"t2" ~label:name
        ~fields:
          [ "n", Events.Int (Graph.n inst);
            "vstar", Events.Int vstar;
            "sim_length", Events.Int sim_len;
            "states_explored", Events.Int states;
            "valid", Events.Bool valid;
          ]
        (Printf.sprintf "%-16s | %4d | %5d | %10d | %9d | %6b\n" name
           (Graph.n inst) vstar sim_len states valid)
  in
  let rows =
    fan_out ~ctx
      [ run "c6/3colors" (c6_instance ());
        run "c12/3colors" (cycle_mod_colors 12 3);
        run "c24/3colors" (cycle_mod_colors 24 3);
        run "c48/3colors" (cycle_mod_colors 48 3);
        run "c8/4colors" (cycle_mod_colors 8 4);
        run "c16/4colors" (cycle_mod_colors 16 4);
        run "c3-prime" (prime_instance (Gen.cycle 3));
        run "k4-prime" (prime_instance (Gen.complete 4));
        run "p5-prime" (prime_instance (Gen.path 5));
      ]
  in
  { id = "t2"; title; prelude; rows;
    coda =
      "shape: growing |V| at fixed |V*| leaves the search cost flat (all\n\
       3-color rows explore identical state counts); growing |V*| increases\n\
       it (see A1 for the exponential).\n";
  }

(* ------------------------------------------------------------------ *)
(* T3: Theorem 3 — Norris                                              *)
(* ------------------------------------------------------------------ *)

let exp_t3 ~ctx () =
  let title = "T3  Theorem 3 (Norris): view stabilization depth <= n" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-20s | %4s | %12s | %8s\n" "family" "n" "stable depth"
        "depth<=n"
  in
  let show name g () =
    let d = Norris.stable_view_depth g in
    let within = d <= max 1 (Graph.n g) in
    row ~experiment:"t3" ~label:name
      ~fields:
        [ "n", Events.Int (Graph.n g);
          "stable_depth", Events.Int d;
          "within_bound", Events.Bool within;
        ]
      (Printf.sprintf "%-20s | %4d | %12d | %8b\n" name (Graph.n g) d within)
  in
  let rows =
    fan_out ~ctx
      (List.map (fun n -> show (Printf.sprintf "path-%d" n) (Gen.path n))
         [ 3; 5; 9; 17; 33 ]
      @ List.map
          (fun n -> show (Printf.sprintf "cycle-%d (uncolored)" n) (Gen.cycle n))
          [ 6; 12; 24 ]
      @ List.map
          (fun k ->
            show
              (Printf.sprintf "c24/%d colors" k)
              (Graph.relabel (Gen.cycle 24) (fun v -> Label.Int (v mod k))))
          [ 3; 4; 6; 8 ]
      @ List.map
          (fun seed ->
            show (Printf.sprintf "G(12,.25) seed %d" seed)
              (Gen.random_connected ~seed 12 0.25))
          [ 1; 2; 3 ]
      @ [ show "grid 4x4" (Gen.grid 4 4);
          show "petersen" (Gen.petersen ());
          show "hypercube-4" (Gen.hypercube 4);
        ])
  in
  { id = "t3"; title; prelude; rows;
    coda =
      "shape: stabilization is far below the worst-case n on most graphs\n\
       (paths are the extremal family: depth ~ n/2), matching Norris' bound.\n";
  }

(* ------------------------------------------------------------------ *)
(* L: Lemmas 2-4 — factors and prime factors                           *)
(* ------------------------------------------------------------------ *)

let exp_lemmas ~ctx () =
  let title = "L   Lemmas 2-4: view graphs are factors; prime factor unique" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-22s | %2s | %6s | %10s | %12s | %7s\n"
        "base (prime-labeled)" "k" "|lift|" "factor ok?" "same prime?" "lift ok?"
  in
  let rows =
    fan_out ~ctx
      (List.map
         (fun (name, base, k, seed) () ->
           let l = Lift.random ~seed base ~k in
           let vg_b = View_graph.of_graph_exn base in
           let vg_l = View_graph.of_graph_exn l.Lift.graph in
           let factor_ok =
             Factor.is_factorizing ~product:l.Lift.graph
               ~factor:vg_l.View_graph.graph ~map:vg_l.View_graph.map
           in
           let same_prime = Iso.equal vg_b.View_graph.graph vg_l.View_graph.graph in
           let bits =
             Array.init (Graph.n base) (fun v -> Bits.of_int ~width:8 (v * 37 mod 256))
           in
           let lifted =
             Lifting.run ~solver:Anonet_algorithms.Rand_mis.algorithm
               ~product:l.Lift.graph ~factor:base ~map:l.Lift.map ~bits
           in
           row ~experiment:"lemmas"
             ~label:(Printf.sprintf "%s/k%d" name k)
             ~fields:
               [ "k", Events.Int k;
                 "lift_nodes", Events.Int (Graph.n l.Lift.graph);
                 "factor_ok", Events.Bool factor_ok;
                 "same_prime", Events.Bool same_prime;
                 "lift_ok", Events.Bool lifted.Lifting.agree;
               ]
             (Printf.sprintf "%-22s | %2d | %6d | %10b | %12b | %7b\n" name k
                (Graph.n l.Lift.graph) factor_ok same_prime lifted.Lifting.agree))
      [ "cycle-5", Gen.label_with_ints (Gen.cycle 5), 2, 11;
        "cycle-5", Gen.label_with_ints (Gen.cycle 5), 4, 12;
        "petersen", Gen.label_with_ints (Gen.petersen ()), 2, 13;
        "wheel-5", Gen.label_with_ints (Gen.wheel 5), 3, 14;
        "K4", Gen.label_with_ints (Gen.complete 4), 3, 15;
        "ham(6,.4)", Gen.label_with_ints (Gen.random_hamiltonian ~seed:9 6 0.4), 2, 16;
      ])
  in
  { id = "lemmas"; title; prelude; rows;
    coda =
      "columns: the view-graph map is a factorizing map (Lemma 2); lift and\n\
       base share one prime factor (Lemma 3); executions lift (lifting lemma).\n";
  }

(* ------------------------------------------------------------------ *)
(* A1: ablation — search cost vs |V*|                                  *)
(* ------------------------------------------------------------------ *)

let exp_a1 ~ctx () =
  let title = "A1  ablation: minimal-simulation search cost vs |V*|" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-16s | %5s | %10s | %10s | %9s\n" "solver" "|V*|"
        "sim length" "search st" "time (s)"
  in
  (* Rows stay sequential — they report wall-clock time, which fanning
     them out would distort.  The context's pool instead shards each
     search itself. *)
  let search solver name g =
    let t0 = Unix.gettimeofday () in
    let label = Printf.sprintf "%s/%d" name (Graph.n g) in
    match
      Min_search.minimal_successful ~ctx ~solver g
        ~base:(Bit_assignment.empty (Graph.n g)) ~len:(Min_search.At_most 24) ()
    with
    | None ->
      row ~experiment:"a1" ~label
        ~fields:
          [ "solver", Events.String name;
            "vstar", Events.Int (Graph.n g);
            "found", Events.Bool false;
          ]
        (Printf.sprintf "%-16s | %5d |      none within 24 rounds\n" name
           (Graph.n g))
    | Some f ->
      let dt = Unix.gettimeofday () -. t0 in
      let sim_len = Bit_assignment.max_length f.Min_search.assignment in
      row ~experiment:"a1" ~label
        ~fields:
          [ "solver", Events.String name;
            "vstar", Events.Int (Graph.n g);
            "sim_length", Events.Int sim_len;
            "states_explored", Events.Int f.Min_search.states_explored;
            "time_s", Events.Float dt;
          ]
        (Printf.sprintf "%-16s | %5d | %10d | %10d | %9.3f\n" name (Graph.n g)
           sim_len f.Min_search.states_explored dt)
  in
  let instance k = Gen.label_with_ints (if k = 2 then Gen.path 2 else Gen.cycle k) in
  let rows =
    List.map
      (fun k -> search Anonet_algorithms.Rand_mis.algorithm "mis" (instance k))
      [ 2; 3; 4; 5; 6 ]
    @ List.map
        (fun k ->
          search Anonet_algorithms.Rand_coloring.algorithm "coloring" (instance k))
        [ 2; 3; 4; 5; 6 ]
    @ List.map
        (fun k ->
          search Anonet_algorithms.Rand_two_hop.algorithm "2-hop-coloring"
            (instance k))
        [ 2; 3; 4 ]
  in
  { id = "a1"; title; prelude; rows;
    coda =
      "shape: exponential growth in |V*| — the inherent price of the generic\n\
       construction (the paper disregards complexity; Theorem 1 is about\n\
       computability).  Deeper solvers (2-hop coloring) pay more per node.\n";
  }

(* ------------------------------------------------------------------ *)
(* A2: ablation — coloring granularity                                 *)
(* ------------------------------------------------------------------ *)

let exp_a2 ~ctx () =
  let title = "A2  ablation: coloring granularity vs view graph size vs cost" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-18s | %5s | %10s | %9s\n" "instance" "|V*|" "search st"
        "time (s)"
  in
  let rows =
    List.map
      (fun k ->
        let inst = cycle_mod_colors 12 k in
        let label = Printf.sprintf "c12/%dcolors" k in
        let t0 = Unix.gettimeofday () in
        match A_infinity.solve ~ctx ~gran:Bundles.mis inst ~max_len:24 () with
        | Error m ->
          row ~experiment:"a2" ~label
            ~fields:[ "error", Events.String m ]
            (Printf.sprintf "c12/%-2d colors     | failed: %s\n" k m)
        | Ok r ->
          let dt = Unix.gettimeofday () -. t0 in
          let vstar = Graph.n r.A_infinity.view_graph.View_graph.graph in
          let states = r.A_infinity.found.Min_search.states_explored in
          row ~experiment:"a2" ~label
            ~fields:
              [ "colors", Events.Int k;
                "vstar", Events.Int vstar;
                "states_explored", Events.Int states;
                "time_s", Events.Float dt;
              ]
            (Printf.sprintf "c12/%-2d colors     | %5d | %10d | %9.3f\n" k vstar
               states dt))
      [ 3; 4; 6 ]
  in
  { id = "a2"; title; prelude; rows;
    coda =
      "shape: a coarser 2-hop coloring gives a smaller view graph and an\n\
       exponentially cheaper derandomization — fewer colors are better for\n\
       the generic stage (the paper: the number of colors is immaterial).\n";
  }

(* ------------------------------------------------------------------ *)
(* A3: ablation — decoupled vs direct                                  *)
(* ------------------------------------------------------------------ *)

let exp_a3 ~ctx () =
  let title = "A3  ablation: decoupled pipeline vs direct randomized algorithm" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-12s | %-10s | %13s | %21s\n" "network" "problem"
        "direct rounds" "decoupled (s1 + s2)"
  in
  let families =
    [ "cycle-6", Gen.cycle 6;
      "path-7", Gen.path 7;
      "petersen", Gen.petersen ();
      "grid-3x3", Gen.grid 3 3;
      "random-10", Gen.random_connected ~seed:4 10 0.3;
    ]
  in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let avg f = List.fold_left (fun a x -> a +. f x) 0.0 seeds /. float_of_int (List.length seeds) in
  let make_row (name, g) (pname, bundle, specific) () =
    let direct =
      avg (fun seed ->
          match Las_vegas.solve bundle.Gran.solver g ~seed () with
          | Ok r -> float_of_int r.Las_vegas.outcome.Executor.rounds
          | Error f -> failwith f.Las_vegas.message)
    in
    let s1 = ref 0.0 and s2 = ref 0.0 in
    List.iter
      (fun seed ->
        match
          Decouple.solve ~gran:bundle g ~seed
            ~stage_two:(Decouple.Specific specific) ()
        with
        | Error m -> failwith m
        | Ok r ->
          assert (
            bundle.Gran.problem.Problem.is_valid_output g r.Decouple.outputs);
          s1 := !s1 +. float_of_int r.Decouple.coloring_rounds;
          s2 := !s2 +. float_of_int r.Decouple.stage_two_rounds)
      seeds;
    let k = float_of_int (List.length seeds) in
    row ~experiment:"a3"
      ~label:(Printf.sprintf "%s/%s" name pname)
      ~fields:
        [ "direct_rounds", Events.Float direct;
          "stage1_rounds", Events.Float (!s1 /. k);
          "stage2_rounds", Events.Float (!s2 /. k);
        ]
      (Printf.sprintf "%-12s | %-10s | %13.1f | %9.1f + %-9.1f\n" name pname
         direct (!s1 /. k) (!s2 /. k))
  in
  let rows =
    fan_out ~ctx
      (List.concat_map
         (fun family ->
           List.map (make_row family)
             [ "mis", Bundles.mis, Anonet_algorithms.Det_from_two_hop.mis;
               "coloring", Bundles.coloring,
               Anonet_algorithms.Det_from_two_hop.coloring;
               "matching", Bundles.maximal_matching,
               Anonet_algorithms.Det_from_two_hop.matching;
             ])
         families)
  in
  { id = "a3"; title; prelude; rows;
    coda =
      "shape: the decoupled pipeline pays a constant-factor overhead — the\n\
       2-hop coloring stage dominates; the problem-specific deterministic\n\
       stage costs about as much as the direct randomized algorithm.\n";
  }

(* ------------------------------------------------------------------ *)
(* A4: ablation — 2-hop palette reduction                              *)
(* ------------------------------------------------------------------ *)

let exp_a4 ~ctx () =
  let title = "A4  ablation: Las-Vegas palette vs greedy 2-hop recoloring" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-12s | %3s | %9s | %14s | %14s\n" "network" "maxdeg"
        "bound" "LV colors" "reduced colors"
  in
  let distinct outputs =
    Array.to_list outputs |> List.sort_uniq Label.compare |> List.length
  in
  let rows =
    fan_out ~ctx
      (List.map
         (fun (name, g) () ->
           let lv =
             match
               Las_vegas.solve Anonet_algorithms.Rand_two_hop.algorithm g ~seed:47 ()
             with
             | Ok r -> r.Las_vegas.outcome.Executor.outputs
             | Error f -> failwith f.Las_vegas.message
           in
           let reduced =
             match
               Decouple.solve ~gran:Bundles.two_hop_coloring g ~seed:47
                 ~stage_two:
                   (Decouple.Specific
                      Anonet_algorithms.Det_from_two_hop.two_hop_recoloring)
                 ()
             with
             | Ok r -> r.Decouple.outputs
             | Error m -> failwith m
           in
           assert (Props.is_k_hop_coloring g 2 (fun v -> reduced.(v)));
           let dmax = Graph.max_degree g in
           row ~experiment:"a4" ~label:name
             ~fields:
               [ "maxdeg", Events.Int dmax;
                 "bound", Events.Int ((dmax * dmax) + 1);
                 "lv_colors", Events.Int (distinct lv);
                 "reduced_colors", Events.Int (distinct reduced);
               ]
             (Printf.sprintf "%-12s | %6d | %9d | %14d | %14d\n" name dmax
                ((dmax * dmax) + 1) (distinct lv) (distinct reduced)))
      [ "cycle-12", Gen.cycle 12;
        "path-12", Gen.path 12;
        "petersen", Gen.petersen ();
        "grid-4x4", Gen.grid 4 4;
        "star-8", Gen.star 8;
        "random-14", Gen.random_connected ~seed:10 14 0.25;
      ])
  in
  { id = "a4"; title; prelude; rows;
    coda =
      "shape: the Las-Vegas stage hands out one bitstring color per view\n\
       class (often ~n of them); greedy reduction brings the palette within\n\
       the maxdeg^2+1 bound (minimizing further is NP-complete, McCormick [35]).\n";
  }

(* ------------------------------------------------------------------ *)
(* E1: extension — the stone-age model (Section 1.3)                   *)
(* ------------------------------------------------------------------ *)

let exp_e1 ~ctx () =
  let title = "E1  extension: 2-hop coloring in the stone-age FSM model" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-12s | %6s | %7s | %12s | %12s | %6s\n" "network"
        "maxdeg" "palette" "mis rounds" "2hop rounds" "valid?"
  in
  let rows =
    fan_out ~ctx
      (List.map
         (fun (name, g) () ->
           let d = Graph.max_degree g in
           let palette = (d * d) + 1 in
           let module E = Anonet_stoneage.Engine in
           let mis_rounds =
             match E.run Anonet_stoneage.Mis.machine g ~seed:3 ~max_rounds:100_000 with
             | Ok o ->
               assert (
                 Anonet_problems.Catalog.mis.Problem.is_valid_output g o.E.outputs);
               o.E.rounds
             | Error e -> failwith (Format.asprintf "%a" E.pp_failure e)
           in
           let two_hop =
             match
               E.run (Anonet_stoneage.Two_hop.make ~palette) g ~seed:4
                 ~max_rounds:1_000_000
             with
             | Ok o -> o
             | Error e -> failwith (Format.asprintf "%a" E.pp_failure e)
           in
           let valid =
             Anonet_problems.Catalog.two_hop_coloring.Problem.is_valid_output g
               two_hop.E.outputs
           in
           assert valid;
           row ~experiment:"e1" ~label:name
             ~fields:
               [ "maxdeg", Events.Int d;
                 "palette", Events.Int palette;
                 "mis_rounds", Events.Int mis_rounds;
                 "two_hop_rounds", Events.Int two_hop.E.rounds;
                 "valid", Events.Bool valid;
               ]
             (Printf.sprintf "%-12s | %6d | %7d | %12d | %12d | %6b\n" name d
                palette mis_rounds two_hop.E.rounds valid))
      [ "cycle-8", Gen.cycle 8;
        "path-9", Gen.path 9;
        "petersen", Gen.petersen ();
        "grid-3x3", Gen.grid 3 3;
        "star-6", Gen.star 6;
        "random-10", Gen.random_connected ~seed:6 10 0.3;
      ])
  in
  { id = "e1"; title; prelude; rows;
    coda =
      "shape: even anonymous finite state machines with one-two-many\n\
       counting compute 2-hop colorings (the paper's Section 1.3 claim);\n\
       round counts scale with the palette (the flag relay is\n\
       time-multiplexed over it).\n";
  }

(* ------------------------------------------------------------------ *)
(* E2: extension — asynchronous execution (α-synchronizer)             *)
(* ------------------------------------------------------------------ *)

let exp_e2 ~ctx () =
  let title = "E2  extension: the α-synchronizer on adversarial schedules" in
  let prelude =
    banner title
    ^ Printf.sprintf "%-22s | %8s | %15s | %s\n" "scheduler" "events"
        "virtual rounds" "outputs = sync?"
  in
  let module Async = Anonet_runtime.Async in
  let g = Gen.petersen () in
  let tape = Anonet_runtime.Tape.random ~seed:2024 in
  let algo = Anonet_algorithms.Rand_two_hop.algorithm in
  let sync =
    match Anonet_runtime.Executor.run algo g ~tape ~max_rounds:2000 with
    | Ok o -> o
    | Error e -> failwith (Format.asprintf "%a" Anonet_runtime.Executor.pp_failure e)
  in
  let rows =
    fan_out ~ctx
      (List.map
         (fun (name, scheduler) () ->
           match Async.run algo g ~tape ~scheduler ~max_events:2_000_000 with
           | Error e -> failwith (Format.asprintf "%a" Async.pp_failure e)
           | Ok { Async.outputs; events; virtual_rounds } ->
             let same =
               Array.for_all2 Label.equal outputs sync.Anonet_runtime.Executor.outputs
             in
             assert same;
             row ~experiment:"e2" ~label:name
               ~fields:
                 [ "events", Events.Int events;
                   "virtual_rounds", Events.Int virtual_rounds;
                   "matches_sync", Events.Bool same;
                 ]
               (Printf.sprintf "%-22s | %8d | %15d | %b\n" name events
                  virtual_rounds same))
         [ "fifo", Async.Fifo;
           "random<=5", Async.Random_delay { seed = 3; max_delay = 5 };
           "random<=20", Async.Random_delay { seed = 4; max_delay = 20 };
           "starve node 0 (x12)", Async.Skewed { seed = 5; max_delay = 12; slow_node = 0 };
         ])
  in
  { id = "e2"; title; prelude; rows;
    coda =
      "shape: the synchronizer reproduces the synchronous outputs exactly\n\
       under every adversarial schedule — all results transfer to\n\
       asynchronous networks.\n";
  }

(* ------------------------------------------------------------------ *)
(* R1: robustness — retransmission under seeded message loss           *)
(* ------------------------------------------------------------------ *)

let exp_r1 ~ctx () =
  let title = "R1  robustness: retransmission wrapper under seeded message loss" in
  let module Faults = Anonet_runtime.Faults in
  let module Retransmit = Anonet_runtime.Retransmit in
  let trials = 20 in
  let losses = [ 0.0; 0.1; 0.2; 0.3 ] in
  let petersen = Gen.petersen () in
  let leader_instance = Graph.relabel petersen (fun _ -> Label.Int 10) in
  let cases =
    [ "2hop/petersen", petersen, Anonet_algorithms.Rand_two_hop.algorithm,
      Catalog.two_hop_coloring;
      "mis/petersen", petersen, Anonet_algorithms.Rand_mis.algorithm, Catalog.mis;
      "leader/petersen", leader_instance,
      Anonet_algorithms.Monte_carlo_leader.make ~id_bits:24,
      Anonet_algorithms.Monte_carlo_leader.problem;
    ]
  in
  let prelude =
    banner title
    ^ Printf.sprintf "%-16s | %4s | %7s | %11s | %9s\n" "algorithm" "loss"
        "success" "mean rounds" "inflation"
  in
  (* One task per algorithm case, returning its whole four-row block; the
     per-loss loop stays sequential inside the task because the inflation
     column divides by the loss-0 mean. *)
  let rows =
    List.concat
      (fan_out ~ctx
         (List.map
            (fun (name, g, algo, problem) () ->
              let wrapped = Retransmit.wrap algo in
              let base_mean = ref 0.0 in
              List.map
                (fun loss ->
                  let successes = ref 0 and rounds_sum = ref 0 in
                  for t = 1 to trials do
                    let tape = Anonet_runtime.Tape.random ~seed:(Prng.hash2 9000 t) in
                    let run_ctx =
                      Run_ctx.make
                        ~faults:(Faults.with_loss loss ~seed:(Prng.hash2 9100 t)) ()
                    in
                    match
                      Executor.run ~ctx:run_ctx wrapped g ~tape
                        ~max_rounds:(64 * (Graph.n g + 4))
                    with
                    | Ok o when problem.Problem.is_valid_output g o.Executor.outputs ->
                      incr successes;
                      rounds_sum := !rounds_sum + o.Executor.rounds
                    | Ok _ | Error _ -> ()
                  done;
                  (* The wrapper is transparent on a loss-free network: every
                     trial must succeed at loss 0 (the Monte-Carlo leader's tie
                     probability is ~n²/2²⁴, invisible at 20 fixed seeds). *)
                  assert (loss > 0.0 || !successes = trials);
                  let mean =
                    if !successes = 0 then nan
                    else float_of_int !rounds_sum /. float_of_int !successes
                  in
                  if loss = 0.0 then base_mean := mean;
                  row ~experiment:"r1"
                    ~label:(Printf.sprintf "%s/loss%.2f" name loss)
                    ~fields:
                      [ "loss", Events.Float loss;
                        "successes", Events.Int !successes;
                        "trials", Events.Int trials;
                        "mean_rounds", Events.Float mean;
                        "inflation", Events.Float (mean /. !base_mean);
                      ]
                    (Printf.sprintf "%-16s | %4.2f | %4d/%2d | %11.1f | %8.2fx\n"
                       name loss !successes trials mean (mean /. !base_mean)))
                losses)
            cases))
  in
  { id = "r1"; title; prelude; rows;
    coda =
      "shape: the retransmission wrapper keeps the success rate at (or near)\n\
       100% across loss rates — each lost message only delays its inner\n\
       round — at the price of round inflation growing with the loss rate.\n\
       Unwrapped algorithms lose messages for good: the synchronous port\n\
       semantics silently feeds the receiver a null (see the fault-model\n\
       section of DESIGN.md), and the α-synchronizer outright deadlocks.\n";
  }

(* ------------------------------------------------------------------ *)
(* R2: robustness — degradation curves under an adaptive adversary     *)
(* ------------------------------------------------------------------ *)

let exp_r2 ~ctx () =
  let title = "R2  robustness: degradation curves under an adaptive adversary" in
  let module Adversary = Anonet_runtime.Adversary in
  let trials = 8 in
  let strengths = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let prelude =
    banner title
    ^ Printf.sprintf "%-14s | %8s | %7s | %11s\n" "algorithm" "strength"
        "success" "mean rounds"
  in
  (* An eavesdropper biasing its corruption budget toward the
     highest-entropy links, at tamper probability [strength]; each trial
     reseeds the adversary so the curves average over target schedules. *)
  let adversary ~strength ~trial =
    Adversary.eavesdropper 3 ~strength ~seed:(Prng.hash2 9300 trial)
  in
  (* A trial is a thunk returning [Some rounds] on a valid stabilization,
     [None] otherwise.  Tampered payloads may be rejected outright by an
     algorithm's message decoder ([Invalid_argument]) — that is the
     degradation being measured, so it counts as a plain failure. *)
  let c6 = Gen.cycle 6 in
  let las_vegas_case algo problem ~strength trial () =
    let run_ctx = Run_ctx.make ~adversary:(adversary ~strength ~trial) () in
    match
      Las_vegas.solve ~ctx:run_ctx algo c6
        ~seed:(Prng.hash2 9400 trial) ~attempts:4 ~divergence:4.0 ()
    with
    | Ok r when problem.Problem.is_valid_output c6 r.Las_vegas.outcome.Executor.outputs
      -> Some r.Las_vegas.outcome.Executor.rounds
    | Ok _ | Error _ -> None
    | exception Invalid_argument _ -> None
  in
  let a_star_case ~strength trial () =
    let run_ctx = Run_ctx.make ~adversary:(adversary ~strength ~trial) () in
    let inst = c6_instance () in
    match A_star.solve ~ctx:run_ctx ~gran:Bundles.mis inst () with
    | Ok o
      when Bundles.mis.Gran.problem.Problem.is_valid_output
             (Problem.strip_coloring inst) o.Executor.outputs ->
      Some o.Executor.rounds
    | Ok _ | Error _ -> None
    | exception Invalid_argument _ -> None
  in
  let cases =
    [ "2hop/c6",
      (fun ~strength trial ->
        las_vegas_case Anonet_algorithms.Rand_two_hop.algorithm
          Catalog.two_hop_coloring ~strength trial);
      "mis/c6",
      (fun ~strength trial ->
        las_vegas_case Anonet_algorithms.Rand_mis.algorithm Catalog.mis
          ~strength trial);
      "a-star/c6", (fun ~strength trial -> a_star_case ~strength trial);
    ]
  in
  (* One task per (algorithm, strength) point: the points are independent,
     so the whole grid fans out across the pool. *)
  let rows =
    fan_out ~ctx
      (List.concat_map
         (fun (name, case) ->
           List.map
             (fun strength () ->
               let outcomes =
                 List.init trials (fun t -> case ~strength (t + 1) ())
               in
               let successes = List.length (List.filter Option.is_some outcomes) in
               (* A strength-0 adversary never tampers: the curves must
                  start from a clean 100% baseline. *)
               assert (strength > 0.0 || successes = trials);
               let mean =
                 if successes = 0 then nan
                 else
                   float_of_int
                     (List.fold_left
                        (fun acc o -> acc + Option.value ~default:0 o)
                        0 outcomes)
                   /. float_of_int successes
               in
               row ~experiment:"r2"
                 ~label:(Printf.sprintf "%s/strength%.2f" name strength)
                 ~fields:
                   [ "strength", Events.Float strength;
                     "successes", Events.Int successes;
                     "trials", Events.Int trials;
                     "mean_rounds", Events.Float mean;
                   ]
                 (Printf.sprintf "%-14s | %8.2f | %4d/%2d | %11.1f\n" name
                    strength successes trials mean))
             strengths)
         cases)
  in
  { id = "r2"; title; prelude; rows;
    coda =
      "shape: success rates decay monotonically (in expectation) with the\n\
       adversary's tamper probability, and the rounds-to-stabilize of the\n\
       surviving runs inflate — the randomized algorithms degrade\n\
       gracefully (fresh coins eventually dodge the budgeted adversary)\n\
       while the deterministic A* falls off a cliff once tampered\n\
       simulations stop validating.\n";
  }

(* ------------------------------------------------------------------ *)
(* AVG: average case — seeded random ensembles at scale                *)
(* ------------------------------------------------------------------ *)

(* Greedy mex coloring of the 2-hop ball, scanned in node-index order on
   the CSR slices directly — O(sum_v deg(v)^2), no neighbor-set
   materialization — so it reaches ensemble sizes the exact machinery
   never could (minimizing chi_2 is NP-complete; the greedy value is the
   standard upper bound, always within maxdeg^2 + 1).  Valid by
   construction: distance <= 2 is symmetric, so when v picks its color
   every earlier node in its ball has already been marked. *)
let greedy_two_hop_palette g =
  let n = Graph.n g in
  let color = Array.make (max 1 n) (-1) in
  (* [seen.(c) = v] iff color [c] occurs in v's 2-hop ball: a timestamp
     per color instead of a clear per node. *)
  let seen = Array.make (max 1 n) (-1) in
  let mark v u = if u <> v && color.(u) >= 0 then seen.(color.(u)) <- v in
  let ball v ~f =
    Graph.iter_neighbors g v ~f:(fun u ->
        f v u;
        Graph.iter_neighbors g u ~f:(fun w -> f v w))
  in
  let palette = ref 0 in
  for v = 0 to n - 1 do
    ball v ~f:mark;
    let c = ref 0 in
    while seen.(!c) = v do incr c done;
    color.(v) <- !c;
    if !c >= !palette then palette := !c + 1
  done;
  (* Re-scan as a direct conflict check — same cost as the coloring pass,
     so the invariant stays asserted even at ensemble sizes where
     [Props.is_k_hop_coloring]'s per-node BFS is unaffordable. *)
  for v = 0 to n - 1 do
    ball v ~f:(fun v u -> if u <> v then assert (color.(u) <> color.(v)))
  done;
  !palette

(* Ensemble sizes: n = 10^3 and 10^4 by default — run_all regenerates
   EXPERIMENTS.md, so the default must stay CI-sized.  ANONET_AVG_NS
   (comma-separated) overrides, and the generators/executor stream at
   any of them: ANONET_AVG_NS=100000,1000000 reproduces the full sweep
   of the paper-scale ensembles (minutes, not hours; see BENCH.md's
   huge-graphs group for the per-phase throughput). *)
let avg_sizes () =
  match Sys.getenv_opt "ANONET_AVG_NS" with
  | None | Some "" -> [ 1_000; 10_000 ]
  | Some s -> List.map int_of_string (String.split_on_char ',' s)

let exp_avg ~ctx () =
  let title =
    "AVG average case: Norris depth, greedy 2-hop palette, MIS rounds on \
     random ensembles"
  in
  let prelude =
    banner title
    ^ Printf.sprintf "%-14s | %7s | %7s | %12s | %12s | %11s\n" "ensemble" "n"
        "samples" "norris depth" "2hop palette" "mis rounds"
  in
  let families =
    [ "gnp-avgdeg8",
      (fun ~seed n ->
        let p = if n <= 1 then 0.0 else 8.0 /. float_of_int (n - 1) in
        Gen.random_connected ~seed n p);
      "regular-d8", (fun ~seed n -> Gen.random_regular ~seed n 8);
    ]
  in
  let samples_at n = if n <= 1_000 then 5 else if n <= 10_000 then 3 else 2 in
  let stats xs =
    let k = float_of_int (List.length xs) in
    ( List.fold_left (fun a x -> a +. float_of_int x) 0.0 xs /. k,
      List.fold_left max min_int xs )
  in
  let rows =
    fan_out ~ctx
      (List.concat_map
         (fun n ->
           List.map
             (fun (name, gen) () ->
               let samples = samples_at n in
               let measure seed =
                 let g = gen ~seed n in
                 let depth = Norris.stable_view_depth g in
                 let palette = greedy_two_hop_palette g in
                 let rounds =
                   match
                     Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm g
                       ~seed:(Prng.hash2 9500 seed) ()
                   with
                   | Ok r ->
                     assert (
                       Catalog.mis.Problem.is_valid_output g
                         r.Las_vegas.outcome.Executor.outputs);
                     r.Las_vegas.outcome.Executor.rounds
                   | Error f -> failwith f.Las_vegas.message
                 in
                 depth, palette, rounds
               in
               let ms = List.init samples (fun s -> measure (s + 1)) in
               let depth_mean, depth_max = stats (List.map (fun (d, _, _) -> d) ms) in
               let pal_mean, pal_max = stats (List.map (fun (_, p, _) -> p) ms) in
               let r_mean, r_max = stats (List.map (fun (_, _, r) -> r) ms) in
               row ~experiment:"avg"
                 ~label:(Printf.sprintf "%s/n%d" name n)
                 ~fields:
                   [ "ensemble", Events.String name;
                     "n", Events.Int n;
                     "samples", Events.Int samples;
                     "norris_depth_mean", Events.Float depth_mean;
                     "norris_depth_max", Events.Int depth_max;
                     "two_hop_palette_mean", Events.Float pal_mean;
                     "two_hop_palette_max", Events.Int pal_max;
                     "mis_rounds_mean", Events.Float r_mean;
                     "mis_rounds_max", Events.Int r_max;
                   ]
                 (Printf.sprintf
                    "%-14s | %7d | %7d | %6.1f / %3d | %6.1f / %3d | %6.1f / %2d\n"
                    name n samples depth_mean depth_max pal_mean pal_max r_mean
                    r_max))
             families)
         (avg_sizes ()))
  in
  { id = "avg"; title; prelude; rows;
    coda =
      "shape: on random ensembles every average-case statistic sits far\n\
       below its worst case — views stabilize at depth O(1)-ish (vs the\n\
       Norris bound n), the greedy 2-hop palette stays near the ball size\n\
       (vs maxdeg^2+1), and MIS stabilizes in O(log n)-ish rounds.  The\n\
       sweep streams: ANONET_AVG_NS=100000,1000000 runs the same rows at\n\
       paper scale through the CSR builder and the flat executor.\n";
  }

(* ------------------------------------------------------------------ *)
(* Registry and drivers                                                *)
(* ------------------------------------------------------------------ *)

let registry : (string * (string * (ctx:Run_ctx.t -> unit -> output))) list =
  [ "f1", ("Figure 1: depth-d local views", exp_f1);
    "f2", ("Figure 2: factor chain", exp_f2);
    "f3", ("Figure 3 / Theorem 1: A*", exp_f3);
    "t2", ("Theorem 2: A_infinity", exp_t2);
    "t3", ("Theorem 3: Norris", exp_t3);
    "lemmas", ("Lemmas 2-4 + lifting lemma", exp_lemmas);
    "a1", ("ablation: search cost vs |V*|", exp_a1);
    "a2", ("ablation: coloring granularity", exp_a2);
    "a3", ("ablation: decoupled vs direct", exp_a3);
    "a4", ("ablation: palette reduction", exp_a4);
    "e1", ("extension: stone-age model", exp_e1);
    "e2", ("extension: asynchronous execution", exp_e2);
    "r1", ("robustness: retransmission under message loss", exp_r1);
    "r2", ("robustness: degradation under an adaptive adversary", exp_r2);
    "avg", ("average case: random ensembles at scale", exp_avg);
  ]

let all = List.map (fun (id, (descr, _)) -> (id, descr)) registry

let render oc out =
  output_string oc out.prelude;
  List.iter (fun r -> output_string oc r.line) out.rows;
  output_string oc out.coda

(* Every row doubles as an ["experiment.row"] event, so an NDJSON stream
   of a harness run carries the whole series machine-readably. *)
let emit_rows ~ctx out =
  let obs = Run_ctx.obs ctx in
  List.iter
    (fun r ->
      Obs.eventf obs "experiment.row" (fun () ->
          ("experiment", Events.String r.experiment)
          :: ("label", Events.String r.label)
          :: r.fields))
    out.rows;
  out

let run ?(ctx = Run_ctx.default) id =
  match List.assoc_opt (String.lowercase_ascii id) registry with
  | None ->
    Error
      (Printf.sprintf "unknown experiment %S (known: %s)" id
         (String.concat ", " (List.map fst registry)))
  | Some (_, f) ->
    let id = String.lowercase_ascii id in
    Ok
      (emit_rows ~ctx
         (Obs.span (Run_ctx.obs ctx) ("experiment." ^ id) (fun () -> f ~ctx ())))

let run_all ?(ctx = Run_ctx.default) () =
  List.map
    (fun (id, _) ->
      match run ~ctx id with Ok o -> o | Error m -> failwith m)
    registry

