(** Distributed problems (Section 1.1).

    A problem [Π] is a set of input instances — labeled graphs — and, for
    each instance, a set of valid output labelings.  Both sets are
    represented by decidable predicates.  The input label of a node is the
    graph's label; per the paper's convention the node's degree is always
    additionally available to algorithms (the runtime provides it), so it
    is not duplicated inside the label. *)

type t = {
  name : string;
  is_instance : Anonet_graph.Graph.t -> bool;
      (** membership of the instance set [Π] *)
  is_valid_output : Anonet_graph.Graph.t -> Anonet_graph.Label.t array -> bool;
      (** [is_valid_output i o] decides [o ∈ Π(i)]; meaningful only when
          [is_instance i] *)
}

(** {2 The 2-hop colored variant [Π^c] (Section 1.1)}

    Instances of [Π^c] are instances of [Π] additionally labeled with a
    2-hop coloring: node labels take the composite form
    [Pair (input, color)].  Valid outputs are unchanged. *)

(** [colored_variant p] is [Π^c]. *)
val colored_variant : t -> t

(** [attach_coloring g colors] forms the [Π^c]-style instance
    [(V, E, <i, c>)] from a [Π]-style instance and a coloring.
    @raise Invalid_argument on length mismatch. *)
val attach_coloring :
  Anonet_graph.Graph.t -> Anonet_graph.Label.t array -> Anonet_graph.Graph.t

(** [strip_coloring g] recovers the underlying [Π]-style instance from a
    [Π^c]-style instance (drops the second label component).
    @raise Invalid_argument if some label is not a pair. *)
val strip_coloring : Anonet_graph.Graph.t -> Anonet_graph.Graph.t

(** [coloring_of g] extracts the color components of a [Π^c]-style
    instance.
    @raise Invalid_argument if some label is not a pair. *)
val coloring_of : Anonet_graph.Graph.t -> Anonet_graph.Label.t array
