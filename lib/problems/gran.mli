(** GRAN bundles (Section 1.1, "Genuine Solvability").

    A problem [Π] belongs to GRAN when (1) some randomized anonymous
    algorithm solves [Π], and (2) some randomized anonymous algorithm
    solves the decision problem [Δ_Π] — deciding whether a labeled graph is
    an instance of [Π].  A bundle carries constructive witnesses of both,
    which is exactly what the derandomization theorem consumes: [A_R] (the
    solver) is simulated on the view graph, and the decider certifies that
    the view graph itself is an instance (the lifting-lemma argument of
    Section 2.3.2). *)

(** How a solver's outputs reference the network.

    The paper's outputs are plain labels, whose validity is independent of
    port numberings — [Label_output].  Some problems (maximal matching)
    are most naturally encoded with outputs that {e name a port}
    ([Label.Int p] = "matched through my port p"); such outputs are only
    meaningful relative to the node's own port numbering, which the
    view-based derandomization cannot see.  Declaring [Port_output] makes
    the derandomization translate port-valued outputs through neighbor
    {e colors} (unique within a neighborhood on 2-hop colored instances),
    which is exactly the information views do carry. *)
type output_encoding =
  | Label_output
  | Port_output

type t = {
  problem : Problem.t;
  solver : Anonet_runtime.Algorithm.t;
      (** a randomized anonymous algorithm solving [problem] *)
  decider : Anonet_runtime.Algorithm.t;
      (** a randomized anonymous algorithm solving [Δ_problem] *)
  output_encoding : output_encoding;
}

(** [check_solved t g outputs] verifies a claimed solution on instance
    [g]. *)
val check_solved : t -> Anonet_graph.Graph.t -> Anonet_graph.Label.t array -> bool

(** [decide t g ~seed] runs the decider and reports whether all nodes voted
    yes. *)
val decide : t -> Anonet_graph.Graph.t -> seed:int -> (bool, string) result
