module Label = Anonet_graph.Label

type output_encoding =
  | Label_output
  | Port_output

type t = {
  problem : Problem.t;
  solver : Anonet_runtime.Algorithm.t;
  decider : Anonet_runtime.Algorithm.t;
  output_encoding : output_encoding;
}

let check_solved t g outputs = t.problem.Problem.is_valid_output g outputs

let decide t g ~seed =
  match Anonet_runtime.Las_vegas.solve_msg t.decider g ~seed () with
  | Error m -> Error m
  | Ok report ->
    let votes = report.Anonet_runtime.Las_vegas.outcome.Anonet_runtime.Executor.outputs in
    let all_yes =
      Array.for_all (fun l -> match l with Label.Bool b -> b | _ -> false) votes
    in
    Ok all_yes
