(** The problem catalog: the classic anonymous-network problems the paper
    discusses, each as a {!Problem.t}.

    Conventions for output labels:
    - colorings (1-hop and 2-hop): any label; validity only compares
      neighbors' outputs;
    - MIS: [Bool true] for members, [Bool false] otherwise;
    - maximal matching: [Int p] ("matched through my port [p]") or [Unit]
      ("unmatched");
    - decision problems: [Bool] votes — all [true] on yes-instances, at
      least one [false] otherwise. *)

(** Graph (1-hop) coloring: every labeled graph is an instance; the output
    must differ across every edge. *)
val coloring : Problem.t

(** 2-hop coloring: outputs must differ between nodes at distance <= 2. *)
val two_hop_coloring : Problem.t

(** [k_hop_coloring k] generalizes both: outputs must differ between
    distinct nodes at distance at most [k].  For [k <= 2] the problem is
    in GRAN; for [k > 2] it is {e not} solvable by randomized anonymous
    algorithms at all (Section 1.2): lifting a valid execution from a
    factor (e.g. C3) to a product (e.g. C6) repeats outputs at distance
    [k], violating validity — the test suite carries the executable
    version of that argument.
    @raise Invalid_argument if [k < 1]. *)
val k_hop_coloring : int -> Problem.t

(** Maximal independent set. *)
val mis : Problem.t

(** Maximal matching, encoded through ports. *)
val maximal_matching : Problem.t

(** [decision ~name yes] is the distributed decision problem [Δ_Y] for the
    yes-instance set [yes] (Section 1.1, "Genuine Solvability"): every
    labeled graph is an instance; on yes-instances all nodes must output
    [Bool true], otherwise at least one node must output [Bool false]. *)
val decision : name:string -> (Anonet_graph.Graph.t -> bool) -> Problem.t

(** [is_valid_decision_output ~yes g o] is the validity predicate of
    [decision] exposed directly. *)
val is_valid_decision_output :
  yes:bool -> Anonet_graph.Graph.t -> Anonet_graph.Label.t array -> bool
