module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Props = Anonet_graph.Props

let any_instance (_ : Graph.t) = true

let proper_k_hop k g (o : Label.t array) =
  Props.is_k_hop_coloring g k (fun v -> o.(v))

let coloring =
  {
    Problem.name = "coloring";
    is_instance = any_instance;
    is_valid_output = proper_k_hop 1;
  }

let two_hop_coloring =
  {
    Problem.name = "2-hop-coloring";
    is_instance = any_instance;
    is_valid_output = proper_k_hop 2;
  }

let k_hop_coloring k =
  if k < 1 then invalid_arg "Catalog.k_hop_coloring: need k >= 1";
  {
    Problem.name = Printf.sprintf "%d-hop-coloring" k;
    is_instance = any_instance;
    is_valid_output = proper_k_hop k;
  }

let as_bool o v =
  match o.(v) with Label.Bool b -> Some b | _ -> None

let mis_valid g o =
  let member v = as_bool o v = Some true in
  let well_typed = Graph.fold_nodes g ~init:true ~f:(fun acc v -> acc && as_bool o v <> None) in
  let independent =
    List.for_all (fun (u, v) -> not (member u && member v)) (Graph.edges g)
  in
  let maximal =
    Graph.fold_nodes g ~init:true ~f:(fun acc v ->
        acc
        && (member v || Array.exists member (Graph.neighbors g v)))
  in
  well_typed && independent && maximal

let mis =
  { Problem.name = "mis"; is_instance = any_instance; is_valid_output = mis_valid }

let matching_valid g o =
  let partner v =
    match o.(v) with
    | Label.Int p -> if p >= 0 && p < Graph.degree g v then Some (Graph.neighbor g v p) else None
    | _ -> None
  in
  let well_typed =
    Graph.fold_nodes g ~init:true ~f:(fun acc v ->
        acc
        && match o.(v) with
           | Label.Unit -> true
           | Label.Int p -> p >= 0 && p < Graph.degree g v
           | _ -> false)
  in
  let symmetric =
    Graph.fold_nodes g ~init:true ~f:(fun acc v ->
        acc
        && match partner v with
           | None -> true
           | Some u -> partner u = Some v)
  in
  let maximal =
    List.for_all
      (fun (u, v) -> not (partner u = None && partner v = None))
      (Graph.edges g)
  in
  well_typed && symmetric && maximal

let maximal_matching =
  {
    Problem.name = "maximal-matching";
    is_instance = any_instance;
    is_valid_output = matching_valid;
  }

let is_valid_decision_output ~yes g o =
  let votes =
    Graph.fold_nodes g ~init:(Some []) ~f:(fun acc v ->
        match acc, o.(v) with
        | Some vs, Label.Bool b -> Some (b :: vs)
        | _, _ -> None)
  in
  match votes with
  | None -> false
  | Some vs -> if yes then List.for_all Fun.id vs else List.exists not vs

let decision ~name yes =
  {
    Problem.name = Printf.sprintf "decide-%s" name;
    is_instance = any_instance;
    is_valid_output = (fun g o -> is_valid_decision_output ~yes:(yes g) g o);
  }
