module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Props = Anonet_graph.Props

type t = {
  name : string;
  is_instance : Graph.t -> bool;
  is_valid_output : Graph.t -> Label.t array -> bool;
}

let all_pairs g =
  Graph.fold_nodes g ~init:true ~f:(fun acc v ->
      acc && match Graph.label g v with Label.Pair _ -> true | _ -> false)

let strip_coloring g = Graph.map_labels g Label.fst

let coloring_of g = Array.map Label.snd (Graph.labels g)

let attach_coloring g colors = Graph.zip_labels g colors

let colored_variant p =
  {
    name = p.name ^ "^c";
    is_instance =
      (fun g ->
        all_pairs g
        && Props.is_k_hop_coloring g 2 (fun v -> Label.snd (Graph.label g v))
        && p.is_instance (strip_coloring g));
    is_valid_output = (fun g o -> p.is_valid_output (strip_coloring g) o);
  }
