(* Metrics registry with lock-free per-domain shards.

   Registration (looking a metric up by name) takes a mutex, but that is the
   cold path: instrumented code resolves its counters once up front and then
   updates them with plain [Atomic.fetch_and_add] on a shard indexed by the
   current domain.  Shards are padded out to a small power of two and merged
   only when a snapshot is taken, so concurrent [--jobs] runs never contend
   on a single cache line for the hot counters. *)

let shard_count = 16

let shard_index () = (Domain.self () :> int) land (shard_count - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : int Atomic.t }

type histogram = {
  h_name : string;
  counts : int Atomic.t array; (* per shard *)
  sums : int Atomic.t array; (* per shard *)
  min_cell : int Atomic.t; (* CAS-merged across domains *)
  max_cell : int Atomic.t;
  buckets : int Atomic.t array; (* log2 buckets, fetch_and_add *)
}

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let cells () = Array.init shard_count (fun _ -> Atomic.make 0)

let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add tbl name m;
      m

let counter t name =
  with_lock t (fun () ->
      find_or_add t.counters name (fun () -> { c_name = name; cells = cells () }))

let incr ?(by = 1) c =
  ignore (Atomic.fetch_and_add c.cells.(shard_index ()) by)

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let gauge t name =
  with_lock t (fun () ->
      find_or_add t.gauges name (fun () -> { g_name = name; cell = Atomic.make 0 }))

let set g v = Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell

let bucket_count = 63

(* Bucket [b] collects values whose bit width is [b]: 0 for v <= 0, else
   1 + floor(log2 v).  Exponential buckets suit the round/latency shapes the
   runtime produces (geometric Las-Vegas budgets, log-depth searches). *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x <> 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    if !b >= bucket_count then bucket_count - 1 else !b
  end

let histogram t name =
  with_lock t (fun () ->
      find_or_add t.histograms name (fun () ->
          {
            h_name = name;
            counts = cells ();
            sums = cells ();
            min_cell = Atomic.make max_int;
            max_cell = Atomic.make min_int;
            buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
          }))

let rec cas_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then cas_min cell v

let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

let observe h v =
  let s = shard_index () in
  ignore (Atomic.fetch_and_add h.counts.(s) 1);
  ignore (Atomic.fetch_and_add h.sums.(s) v);
  cas_min h.min_cell v;
  cas_max h.max_cell v;
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1)

type histogram_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_stats) list;
}

let merge_cells a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a

let histogram_stats h =
  let count = merge_cells h.counts in
  let sum = merge_cells h.sums in
  let min = if count = 0 then 0 else Atomic.get h.min_cell in
  let max = if count = 0 then 0 else Atomic.get h.max_cell in
  let buckets = ref [] in
  for b = bucket_count - 1 downto 0 do
    let n = Atomic.get h.buckets.(b) in
    if n > 0 then buckets := (b, n) :: !buckets
  done;
  { count; sum; min; max; buckets = !buckets }

let sorted_bindings tbl value =
  Hashtbl.fold (fun name m acc -> (name, value m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  with_lock t (fun () ->
      {
        counters = sorted_bindings t.counters counter_value;
        gauges = sorted_bindings t.gauges gauge_value;
        histograms = sorted_bindings t.histograms histogram_stats;
      })

let mean st = if st.count = 0 then 0. else float_of_int st.sum /. float_of_int st.count

let render_text snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "stats:\n";
  if snap.counters <> [] then begin
    Buffer.add_string buf "  counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "    %-34s %d\n" name v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "  gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "    %-34s %d\n" name v))
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "  histograms:\n";
    List.iter
      (fun (name, st) ->
        Buffer.add_string buf
          (Printf.sprintf "    %-34s count=%d sum=%d min=%d max=%d mean=%.1f\n"
             name st.count st.sum st.min st.max (mean st)))
      snap.histograms
  end;
  Buffer.contents buf

(* Single-line JSON so the CLI trailer can be extracted with [tail -n 1] and
   fed straight to a JSON parser. *)
let render_json snap =
  let buf = Buffer.create 512 in
  let obj fields render =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Json.escape_string name);
        Buffer.add_char buf ':';
        render v)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"schema\":\"anonet-metrics/1\",\"counters\":";
  obj snap.counters (fun v -> Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\"gauges\":";
  obj snap.gauges (fun v -> Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\"histograms\":";
  obj snap.histograms (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":["
           st.count st.sum st.min st.max);
      List.iteri
        (fun i (b, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" b n))
        st.buckets;
      Buffer.add_string buf "]}");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
