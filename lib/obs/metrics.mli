(** Metrics registry with lock-free per-domain shards.

    Looking a metric up by name takes a mutex (cold path, done once per run);
    updating one is a single [Atomic.fetch_and_add] on a shard picked by the
    current domain id, so concurrent [--jobs] runs do not contend.  Shards
    are merged when {!snapshot} is taken.  Registration is idempotent: asking
    for the same name twice returns the same metric. *)

type t
(** A registry of named counters, gauges and histograms. *)

val create : unit -> t

(** {1 Counters} — monotone sums, sharded per domain. *)

type counter

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
(** Merged value across all shards.  Only consistent once concurrent writers
    have quiesced, like {!snapshot}. *)

(** {1 Gauges} — last-write-wins instantaneous values. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} — count/sum/min/max plus log2 buckets. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one sample.  Bucket [b] collects samples of bit width [b]
    (i.e. [2^(b-1) <= v < 2^b]); bucket 0 collects [v <= 0]. *)

(** {1 Snapshots} *)

type histogram_stats = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;  (** 0 when [count = 0] *)
  buckets : (int * int) list;  (** (log2 bucket, samples), non-empty only *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_stats) list;
}
(** All lists sorted by metric name. *)

val snapshot : t -> snapshot

val render_text : snapshot -> string
(** Human-readable [stats:] block, used for the CLI [--metrics text]
    trailer. *)

val render_json : snapshot -> string
(** Single-line JSON object (schema [anonet-metrics/1]) terminated by a
    newline, so it can be extracted from mixed CLI output with [tail -n 1]. *)
