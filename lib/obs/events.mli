(** Structured event sink with pluggable emitters.

    An event is a name plus typed fields.  Emitted lines carry a timestamp
    (seconds since sink creation), a monotone sequence number, and the event
    name, then the fields in order.  Emission is mutex-serialised so lines
    from concurrent domains never interleave; the {!null} sink skips all
    work.

    The field names ["ts"], ["seq"] and ["event"] are reserved by the sink. *)

type value = Bool of bool | Int of int | Float of float | String of string

type t

val null : t
(** Discards every event; {!live} is [false]. *)

val human : out_channel -> t
(** One readable [\[    ts #seq\] name k=v ...] line per event. *)

val ndjson : out_channel -> t
(** One JSON object per line:
    [{"ts":<s>,"seq":<n>,"event":"<name>",<field>:<value>,...}]. *)

val ndjson_lines : (string -> unit) -> t
(** Renders each event exactly as {!ndjson} would and hands the finished
    line — {e without} its terminating newline — to the callback, under
    the sink's mutex.  This is how the serve frontend turns a job's event
    stream into wire frames: one frame per line, byte-identical to the
    line an {!ndjson} sink would have written.  The callback must not
    re-enter the sink. *)

val live : t -> bool
(** [false] only for {!null}; guard expensive field construction with it. *)

val emit : t -> string -> (string * value) list -> unit
val flush : t -> unit
