(* Minimal JSON rendering helpers shared by the metrics and event emitters.
   Rendering only — parsing stays out of the library so it remains
   dependency-free. *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* NaN and infinities are not representable in JSON; emit null rather than
   producing an unparseable document. *)
let of_float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f
