(** Observability handle: a metrics registry plus an event sink.

    One [Obs.t] rides inside [Run_ctx.t] through every runtime and search
    entry point.  The {!null} handle is the default and is engineered to be
    near-free: metric handles come back as [None] and every update is a
    single option match, so instrumented code stays byte-identical in output
    and within noise in speed.

    Typical use in instrumented code:
    {[
      let rounds = Obs.counter obs "executor.rounds" in  (* once, cold *)
      ...
      Obs.incr rounds;                                   (* hot, per round *)
      Obs.event obs "round" [ ("round", Int r) ];        (* no-op if sink null *)
    ]} *)

type t

val null : t
(** No metrics, no events; {!live} is [false]. *)

val make : ?metrics:Metrics.t -> ?events:Events.t -> unit -> t
(** A live handle.  [metrics] defaults to a fresh registry, [events] to the
    null sink (metrics without an event stream is the common CLI case). *)

val live : t -> bool
val metrics : t -> Metrics.t option
val events : t -> Events.t

(** {1 Metric handles} — [None] on the null handle, so hot-path updates cost
    one branch. *)

val counter : t -> string -> Metrics.counter option
val gauge : t -> string -> Metrics.gauge option
val histogram : t -> string -> Metrics.histogram option
val incr : ?by:int -> Metrics.counter option -> unit
val set : Metrics.gauge option -> int -> unit
val observe : Metrics.histogram option -> int -> unit

(** {1 Events} *)

val event : t -> string -> (string * Events.value) list -> unit
(** Emit iff the event sink is live (not null). *)

val eventf : t -> string -> (unit -> (string * Events.value) list) -> unit
(** Like {!event} but the field list is built lazily — use when constructing
    the payload itself is too expensive for a hot loop. *)

(** {1 Profiling spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], recording its wall-clock duration in histogram
    [span.<name>.ns] and emitting [span.open] / [span.close] events (the
    close event carries [ns] and [ok]; an escaping exception closes the span
    with [ok=false] and re-raises).  On the null handle this is exactly
    [f ()]. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (microsecond granularity); monotone enough for
    coarse task timing. *)
