(* Structured event sink.

   An event is a name plus a flat list of typed fields.  The sink assigns a
   monotone sequence number and a timestamp relative to sink creation, then
   hands the rendered line to the emitter under a mutex so lines from racing
   domains never interleave.  The null sink short-circuits before any of
   that work happens. *)

type value = Bool of bool | Int of int | Float of float | String of string

type kind =
  | Null
  | Human of out_channel
  | Ndjson of out_channel
  | Ndjson_lines of (string -> unit)

type t = {
  kind : kind;
  lock : Mutex.t;
  seq : int Atomic.t;
  t0 : float;
}

let make kind =
  { kind; lock = Mutex.create (); seq = Atomic.make 0; t0 = Unix.gettimeofday () }

let null = make Null
let human oc = make (Human oc)
let ndjson oc = make (Ndjson oc)
let ndjson_lines f = make (Ndjson_lines f)
let live t = t.kind <> Null

let value_to_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Json.of_float f
  | String s -> Json.escape_string s

let value_to_human = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s

(* "ts", "seq" and "event" are reserved: the sink writes them first and a
   field reusing one of those names would produce a duplicate JSON key. *)
let ndjson_line ~ts ~seq name fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f,\"seq\":%d,\"event\":%s" ts seq (Json.escape_string name));
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (Json.escape_string k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (value_to_json v))
    fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let human_line ~ts ~seq name fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "[%10.6f #%04d] %s" ts seq name);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (value_to_human v))
    fields;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let emit t name fields =
  match t.kind with
  | Null -> ()
  | Human _ | Ndjson _ | Ndjson_lines _ ->
      let seq = Atomic.fetch_and_add t.seq 1 in
      let ts = Unix.gettimeofday () -. t.t0 in
      let line =
        match t.kind with
        | Null | Ndjson _ | Ndjson_lines _ -> ndjson_line ~ts ~seq name fields
        | Human _ -> human_line ~ts ~seq name fields
      in
      Mutex.lock t.lock;
      (match t.kind with
       | Null -> ()
       | Human oc | Ndjson oc -> output_string oc line
       | Ndjson_lines f ->
         (* Hand over the rendered line without its terminating newline:
            consumers that re-frame lines (the wire protocol's event
            frames) should not have to strip it, and consumers that write
            files add their own. *)
         f (String.sub line 0 (String.length line - 1)));
      Mutex.unlock t.lock

let flush t =
  match t.kind with
  | Null | Ndjson_lines _ -> ()
  | Human oc | Ndjson oc -> flush oc
