(* Observability handle threaded through the runtime via Run_ctx.

   The design constraint is the null path: every entry point receives an
   [Obs.t], and when it is [null] the per-round cost must be a handful of
   option matches — no allocation, no atomics, no formatting.  Metric
   handles are therefore [option]s resolved once at the start of a run, and
   event payloads are only built when the sink is live. *)

type t = {
  metrics : Metrics.t option;
  events : Events.t;
  live : bool;
}

let null = { metrics = None; events = Events.null; live = false }

let make ?metrics ?(events = Events.null) () =
  let metrics = match metrics with Some m -> Some m | None -> Some (Metrics.create ()) in
  { metrics; events; live = true }

let live t = t.live
let metrics t = t.metrics
let events t = t.events

let counter t name =
  match t.metrics with None -> None | Some m -> Some (Metrics.counter m name)

let gauge t name =
  match t.metrics with None -> None | Some m -> Some (Metrics.gauge m name)

let histogram t name =
  match t.metrics with None -> None | Some m -> Some (Metrics.histogram m name)

let incr ?by c = match c with None -> () | Some c -> Metrics.incr ?by c
let set g v = match g with None -> () | Some g -> Metrics.set g v
let observe h v = match h with None -> () | Some h -> Metrics.observe h v

let event t name fields =
  if Events.live t.events then Events.emit t.events name fields

(* Lazily-built payloads, for hot paths where even constructing the field
   list is unwelcome. *)
let eventf t name fields =
  if Events.live t.events then Events.emit t.events name (fields ())

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let span t name f =
  if not t.live then f ()
  else begin
    let h = histogram t ("span." ^ name ^ ".ns") in
    event t "span.open" [ ("span", Events.String name) ];
    let t0 = now_ns () in
    let finish ok =
      let ns = now_ns () - t0 in
      observe h ns;
      event t "span.close"
        [ ("span", Events.String name); ("ns", Events.Int ns); ("ok", Events.Bool ok) ]
    in
    match f () with
    | v ->
        finish true;
        v
    | exception e ->
        finish false;
        raise e
  end
