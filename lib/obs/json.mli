(** Tiny JSON rendering helpers for the observability emitters. *)

val escape_string : string -> string
(** [escape_string s] is [s] as a quoted JSON string literal, with control
    characters, quotes and backslashes escaped. *)

val of_float : float -> string
(** [of_float f] renders [f] as a JSON number, or [null] for NaN and the
    infinities (which JSON cannot represent). *)
