module Gran = Anonet_problems.Gran
module Catalog = Anonet_problems.Catalog

let coloring =
  {
    Gran.problem = Catalog.coloring;
    solver = Rand_coloring.algorithm;
    decider = Deciders.always_yes;
    output_encoding = Gran.Label_output;
  }

let two_hop_coloring =
  {
    Gran.problem = Catalog.two_hop_coloring;
    solver = Rand_two_hop.algorithm;
    decider = Deciders.always_yes;
    output_encoding = Gran.Label_output;
  }

let mis =
  {
    Gran.problem = Catalog.mis;
    solver = Rand_mis.algorithm;
    decider = Deciders.always_yes;
    output_encoding = Gran.Label_output;
  }

let maximal_matching =
  {
    Gran.problem = Catalog.maximal_matching;
    solver = Rand_matching.algorithm;
    decider = Deciders.always_yes;
    (* matching outputs name ports; the derandomization must translate
       them through neighbor colors *)
    output_encoding = Gran.Port_output;
  }

let all = [ coloring; two_hop_coloring; mis; maximal_matching ]
