(** Las-Vegas randomized maximal matching in the anonymous model.

    Three-round phases: in the {e propose} round every active node flips a
    coin; heads makes it a proposer, which offers itself to one eligible
    neighbor (eligible ports are cycled across phases so every active
    neighbor is offered to infinitely often).  In the {e accept} round a
    tails node accepts the lowest-port proposal it received, committing
    immediately.  In the {e commit} round a proposer that finds an
    acceptance on its proposed port commits too.  Statuses are broadcast
    every round; an active node with no active neighbors left terminates
    unmatched.

    Safety rests on role exclusivity (a proposer cannot match with anyone
    except through its single outstanding proposal, so an accept always
    consummates) and on status causality (two adjacent nodes cannot both
    terminate unmatched, since each waits for the other to leave first).

    Output: [Label.Int p] — matched through port [p] — or [Label.Unit]
    for unmatched. *)

include Anonet_runtime.Algorithm.S

val algorithm : Anonet_runtime.Algorithm.t
