(** Monte-Carlo leader election with known network size — the "mock
    anonymous" case (Section 1.3).

    Genuine anonymity rules out leader election (see the
    [leader_election] example), but the paper surveys the classic escape
    hatches: if the nodes know the network size [n] (Itai-Rodeh [26, 27],
    and with high probability in general graphs [36]), a {e Monte-Carlo}
    algorithm — one allowed to fail — elects a leader: every node draws an
    [id_bits]-bit random identifier, floods the maximum for [n] rounds
    (enough to cover any diameter), and claims leadership iff its own
    identifier equals the maximum.  The failure mode is a tie on the
    maximum identifier, with probability at most [n² / 2^id_bits].

    Instances must carry [Label.Int n] (the true node count) at every
    node — precisely the kind of input-encoded global knowledge whose
    exclusion motivates the class GRAN.  The algorithm is Monte-Carlo, not
    Las-Vegas: it always terminates but can produce several leaders, so it
    witnesses a problem {e outside} GRAN whose relaxation is solvable. *)

(** [make ~id_bits] builds the algorithm; higher [id_bits] lowers the tie
    probability.  Output: [Label.Bool is_leader].
    @raise Invalid_argument if [id_bits < 1]. *)
val make : id_bits:int -> Anonet_runtime.Algorithm.t

(** The leader election problem: instances are graphs where every node is
    labeled with the (true) node count; valid outputs have exactly one
    leader. *)
val problem : Anonet_problems.Problem.t
