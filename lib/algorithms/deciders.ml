module Label = Anonet_graph.Label
module Algorithm = Anonet_runtime.Algorithm

let always_yes : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      out : Label.t option;
    }

    let name = "decider-always-yes"

    let init ~input:_ ~degree = { degree; out = None }

    let round s ~bit:_ ~inbox:_ =
      { s with out = Some (Label.Bool true) }, Algorithm.silence ~degree:s.degree

    let output s = s.out
  end)

let two_hop_colored_variant : Algorithm.t =
  (module struct
    (* Announce own color, relay the heard multiset, then vote: a node
       votes no iff its own label is malformed or its color collides
       within two hops (every violating pair detects itself). *)
    type step =
      | Announce
      | Relay
      | Vote

    type state = {
      degree : int;
      color : Label.t option;  (* None when the label is not a pair *)
      step : step;
      heard : Label.t array;
      out : Label.t option;
    }

    let name = "decider-2hop-variant"

    let init ~input ~degree =
      let color = match input with Label.Pair (_, c) -> Some c | _ -> None in
      { degree; color; step = Announce; heard = [||]; out = None }

    let output s = s.out

    (* A malformed node announces a unit color; its own vote is already
       doomed to "no", and unit cannot create false conflicts for properly
       labeled neighbors unless they too collide. *)
    let my_color s = Option.value ~default:Label.Unit s.color

    let round s ~bit:_ ~inbox =
      match s.step with
      | Announce ->
        { s with step = Relay }, Algorithm.broadcast ~degree:s.degree (my_color s)
      | Relay ->
        let heard = Array.map (fun m -> Option.get m) inbox in
        ( { s with step = Vote; heard },
          Algorithm.broadcast ~degree:s.degree
            (Label.List (List.sort Label.compare (Array.to_list heard))) )
      | Vote ->
        let relays =
          Array.to_list inbox
          |> List.map (fun m -> Label.to_list (Option.get m))
        in
        let c = my_color s in
        let collision =
          Array.exists (Label.equal c) s.heard
          || List.exists
               (fun multiset ->
                 List.length (List.filter (Label.equal c) multiset) >= 2)
               relays
        in
        let vote = Option.is_some s.color && not collision in
        ( { s with step = Announce; heard = [||]; out = Some (Label.Bool vote) },
          Algorithm.silence ~degree:s.degree )
  end)
