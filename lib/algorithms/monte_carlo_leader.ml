module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm

let problem =
  {
    Anonet_problems.Problem.name = "leader-election(n known)";
    is_instance =
      (fun g ->
        let n = Graph.n g in
        Graph.fold_nodes g ~init:true ~f:(fun acc v ->
            acc && Label.equal (Graph.label g v) (Label.Int n)));
    is_valid_output =
      (fun g o ->
        let leaders =
          Graph.fold_nodes g ~init:0 ~f:(fun acc v ->
              match o.(v) with
              | Label.Bool true -> acc + 1
              | Label.Bool false -> acc
              | _ -> min_int)
        in
        leaders = 1);
  }

let make ~id_bits : Algorithm.t =
  if id_bits < 1 then invalid_arg "Monte_carlo_leader.make: need id_bits >= 1";
  (module struct
    (* Rounds 1..id_bits draw the identifier (one bit per round, per the
       model); rounds id_bits+1 .. id_bits+n flood the maximum. *)
    type state = {
      degree : int;
      n : int;
      round_no : int;
      my_id : Bits.t;
      best : Bits.t;
      out : Label.t option;
    }

    let name = Printf.sprintf "monte-carlo-leader-%db" id_bits

    let init ~input ~degree =
      let n =
        match input with
        | Label.Int n when n >= 1 -> n
        | l ->
          invalid_arg
            ("monte-carlo-leader: input must be the node count, got "
             ^ Label.to_string l)
      in
      { degree; n; round_no = 0; my_id = Bits.empty; best = Bits.empty; out = None }

    let output s = s.out

    let round s ~bit ~inbox =
      let s = { s with round_no = s.round_no + 1 } in
      if s.round_no <= id_bits then begin
        (* Identifier-drawing phase. *)
        let my_id = Bits.append s.my_id bit in
        let s = { s with my_id; best = my_id } in
        if s.round_no = id_bits then
          (* start the flood *)
          s, Algorithm.broadcast ~degree:s.degree (Label.Bits s.best)
        else s, Algorithm.silence ~degree:s.degree
      end
      else begin
        (* Flooding phase: absorb neighbors' maxima, rebroadcast. *)
        let best =
          Array.fold_left
            (fun acc m ->
              match m with
              | Some (Label.Bits b) -> if Bits.compare_lex b acc > 0 then b else acc
              | Some _ -> invalid_arg "monte-carlo-leader: malformed message"
              | None -> acc)
            s.best inbox
        in
        let s = { s with best } in
        if s.round_no >= id_bits + s.n then begin
          let s =
            { s with out = Some (Label.Bool (Bits.equal s.my_id s.best)) }
          in
          s, Algorithm.silence ~degree:s.degree
        end
        else s, Algorithm.broadcast ~degree:s.degree (Label.Bits s.best)
      end
  end)
