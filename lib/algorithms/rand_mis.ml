module Label = Anonet_graph.Label
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-mis"

type status =
  | Undecided
  | In_mis
  | Out_mis

type state = {
  degree : int;
  status : status;
  my_coin : bool option;  (* the coin broadcast in the previous round *)
  out : Label.t option;
}

let init ~input:_ ~degree = { degree; status = Undecided; my_coin = None; out = None }

let output s = s.out

let encode_status = function
  | Undecided -> "u"
  | In_mis -> "in"
  | Out_mis -> "out"

let msg status coin = Label.Pair (Label.Str (encode_status status), Label.Bool coin)

let decode = function
  | Label.Pair (Label.Str s, Label.Bool coin) -> s, coin
  | _ -> invalid_arg "rand-mis: malformed message"

let round s ~bit ~inbox =
  (* Round 1 has an empty inbox; from round 2 on every port carries a
     status message. *)
  let received = List.filter_map (Option.map decode) (Array.to_list inbox) in
  let s =
    match s.status with
    | In_mis | Out_mis -> s
    | Undecided ->
      let neighbor_joined = List.exists (fun (st, _) -> st = "in") received in
      if neighbor_joined then
        { s with status = Out_mis; out = Some (Label.Bool false) }
      else begin
        let undecided_heads =
          List.exists (fun (st, coin) -> st = "u" && coin) received
        in
        match s.my_coin with
        | Some true when (not undecided_heads) && List.length received = s.degree ->
          { s with status = In_mis; out = Some (Label.Bool true) }
        | _ -> s
      end
  in
  (* Broadcast the (possibly new) status.  A decided node's coin is dead
     state — receivers ignore the coin on non-"u" messages and the node
     never reads its own coin after deciding — so it is canonicalized
     away: once decided, the successor state and outgoing messages no
     longer depend on the tape, which both collapses duplicate states in
     the search dedup tables and lets the core-guided pruner certify the
     node's bit as insensitive. *)
  match s.status with
  | Undecided ->
    let s = { s with my_coin = Some bit } in
    s, Algorithm.broadcast ~degree:s.degree (msg s.status bit)
  | In_mis | Out_mis ->
    let s = { s with my_coin = None } in
    s, Algorithm.broadcast ~degree:s.degree (msg s.status false)

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)

(* Flat companion: one word per node, one word per message slot.

   State word: bits 0-1 = status (0 undecided / 1 in / 2 out), bits 2-3 =
   my_coin (0 none / 1 Some false / 2 Some true; always 0 once decided —
   the boxed round canonicalizes the dead coin to [None] the same way).
   [degree] is constant and [out] is determined by [status], so the word
   is an injective encoding of the boxed state — the flat dedup key
   distinguishes exactly the states the boxed Marshal fingerprint does.

   Message word: [1 + (status lsl 1 lor coin)] (so nonzero; a zero slot
   means no message, which never happens here — every node broadcasts
   every round). *)
let flat_out_true = Some (Label.Bool true)
let flat_out_false = Some (Label.Bool false)

let flat_instance : Algorithm.Flat.instance =
  {
    state_words = 1;
    msg_words = 1;
    init = (fun ~node:_ ~input:_ ~degree:_ ~state:_ ~off:_ -> ());
    (* all-zero span = Undecided, no coin yet *)
    round =
      (fun ~node:_ ~bit ~degree ~state ~off ~inbox ~ioff ~send ~soff ->
        let w = Array.unsafe_get state off in
        let status = w land 3 and coin = (w lsr 2) land 3 in
        let status =
          if status <> 0 then status
          else begin
            let received = ref 0 in
            let neighbor_joined = ref false in
            let undecided_heads = ref false in
            for p = 0 to degree - 1 do
              let m = Array.unsafe_get inbox (ioff + p) in
              if m <> 0 then begin
                incr received;
                let m = m - 1 in
                let mstatus = m lsr 1 in
                if mstatus = 1 then neighbor_joined := true
                else if mstatus = 0 && m land 1 = 1 then undecided_heads := true
              end
            done;
            if !neighbor_joined then 2
            else if coin = 2 && (not !undecided_heads) && !received = degree
            then 1
            else 0
          end
        in
        (* Decided nodes canonicalize their dead coin to "none" and
           broadcast coin=false, mirroring the boxed round exactly. *)
        let coin_bits = if status <> 0 then 0 else if bit then 2 else 1 in
        let sent_coin = if status = 0 && bit then 1 else 0 in
        Array.unsafe_set state off (status lor (coin_bits lsl 2));
        Array.unsafe_set send soff (1 + ((status lsl 1) lor sent_coin));
        true);
    output =
      (fun ~state ~off ->
        match Array.unsafe_get state off land 3 with
        | 1 -> flat_out_true
        | 2 -> flat_out_false
        | _ -> None);
    has_output = (fun ~state ~off -> Array.unsafe_get state off land 3 <> 0);
  }

let () =
  Algorithm.register_flat algorithm
    { Algorithm.Flat.plan = (fun _g -> Some flat_instance) }
