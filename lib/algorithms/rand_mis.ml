module Label = Anonet_graph.Label
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-mis"

type status =
  | Undecided
  | In_mis
  | Out_mis

type state = {
  degree : int;
  status : status;
  my_coin : bool option;  (* the coin broadcast in the previous round *)
  out : Label.t option;
}

let init ~input:_ ~degree = { degree; status = Undecided; my_coin = None; out = None }

let output s = s.out

let encode_status = function
  | Undecided -> "u"
  | In_mis -> "in"
  | Out_mis -> "out"

let msg status coin = Label.Pair (Label.Str (encode_status status), Label.Bool coin)

let decode = function
  | Label.Pair (Label.Str s, Label.Bool coin) -> s, coin
  | _ -> invalid_arg "rand-mis: malformed message"

let round s ~bit ~inbox =
  (* Round 1 has an empty inbox; from round 2 on every port carries a
     status message. *)
  let received = List.filter_map (Option.map decode) (Array.to_list inbox) in
  let s =
    match s.status with
    | In_mis | Out_mis -> s
    | Undecided ->
      let neighbor_joined = List.exists (fun (st, _) -> st = "in") received in
      if neighbor_joined then
        { s with status = Out_mis; out = Some (Label.Bool false) }
      else begin
        let undecided_heads =
          List.exists (fun (st, coin) -> st = "u" && coin) received
        in
        match s.my_coin with
        | Some true when (not undecided_heads) && List.length received = s.degree ->
          { s with status = In_mis; out = Some (Label.Bool true) }
        | _ -> s
      end
  in
  (* Broadcast the (possibly new) status with a fresh coin; decided nodes'
     coins are ignored by receivers. *)
  let s = { s with my_coin = Some bit } in
  s, Algorithm.broadcast ~degree:s.degree (msg s.status bit)

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)
