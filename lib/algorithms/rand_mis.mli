(** Las-Vegas randomized maximal independent set (cf. Luby [34] and
    Alon-Babai-Itai [3], adapted to the anonymous one-bit-per-round model).

    Pipelined single-round phases: every undecided node broadcasts its
    status together with a fresh coin.  A node joins the MIS when its
    previous coin was heads and no undecided neighbor's coin was; a node
    leaves (outputs [false]) as soon as a neighbor has joined.  Adjacent
    nodes can never join simultaneously, and every undecided node joins
    with positive probability each phase, so the algorithm terminates with
    probability 1.

    Output: [Label.Bool in_mis]. *)

include Anonet_runtime.Algorithm.S

val algorithm : Anonet_runtime.Algorithm.t
