(** Deciders for the distributed decision problems [Δ_Π] of the catalog.

    Genuine solvability requires a randomized anonymous algorithm deciding
    instance membership; for the catalog problems (whose instance sets are
    all labeled graphs) the decider is trivial, and for 2-hop colored
    variants [Π^c] membership is locally checkable: every violation of the
    2-hop coloring property involves two nodes at distance at most 2, and
    each of them can detect it from its 2-hop neighborhood.  Deterministic
    algorithms are a special case of randomized ones, so these deciders
    witness GRAN membership as required. *)

(** Decider for problems whose instance set is all labeled graphs: every
    node immediately votes yes. *)
val always_yes : Anonet_runtime.Algorithm.t

(** Decider for [Π^c]-style instances where the base problem accepts all
    graphs: checks that the node's own label is a [Pair] and that the
    color component is proper within its 2-hop neighborhood; votes
    [Bool] accordingly.  On a yes-instance all nodes vote yes; on a
    no-instance at least one node (a violating one) votes no. *)
val two_hop_colored_variant : Anonet_runtime.Algorithm.t
