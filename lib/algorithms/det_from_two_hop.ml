module Label = Anonet_graph.Label
module Algorithm = Anonet_runtime.Algorithm

(* The 2-hop color of a [Π^c]-style composite label. *)
let color_of_input = function
  | Label.Pair (_, c) -> c
  | l -> l

(* ---------- Greedy MIS ---------- *)

module Mis = struct
  let name = "det-mis-from-2hop"

  type status =
    | Undecided
    | In_mis
    | Out_mis

  type state = {
    degree : int;
    color : Label.t;
    status : status;
    out : Label.t option;
  }

  let init ~input ~degree =
    { degree; color = color_of_input input; status = Undecided; out = None }

  let output s = s.out

  let encode_status = function Undecided -> "u" | In_mis -> "in" | Out_mis -> "out"

  let msg s = Label.Pair (Label.Str (encode_status s.status), s.color)

  let decode = function
    | Label.Pair (Label.Str st, color) -> st, color
    | _ -> invalid_arg "det-mis: malformed message"

  let round s ~bit:_ ~inbox =
    let received = List.filter_map (Option.map decode) (Array.to_list inbox) in
    let s =
      match s.status with
      | In_mis | Out_mis -> s
      | Undecided ->
        if List.exists (fun (st, _) -> st = "in") received then
          { s with status = Out_mis; out = Some (Label.Bool false) }
        else begin
          let undecided_colors =
            List.filter_map
              (fun (st, c) -> if st = "u" then Some c else None)
              received
          in
          let locally_minimal =
            List.for_all (fun c -> Label.compare s.color c < 0) undecided_colors
          in
          (* Round 1 has an empty inbox: wait until every neighbor has
             spoken at least once. *)
          if locally_minimal && List.length received = s.degree then
            { s with status = In_mis; out = Some (Label.Bool true) }
          else s
        end
    in
    s, Algorithm.broadcast ~degree:s.degree (msg s)

  let algorithm : Algorithm.t =
    (module struct
      type nonrec state = state

      let name = name

      let init = init

      let round = round

      let output = output
    end)
end

(* ---------- Greedy coloring ---------- *)

module Coloring = struct
  let name = "det-coloring-from-2hop"

  type state = {
    degree : int;
    color : Label.t;  (* the input 2-hop color, used as priority *)
    chosen : int option;  (* the output color, once picked *)
    out : Label.t option;
  }

  let init ~input ~degree =
    { degree; color = color_of_input input; chosen = None; out = None }

  let output s = s.out

  (* Message: (my 2-hop color, my chosen output color if any). *)
  let msg s =
    let chosen = match s.chosen with None -> Label.Unit | Some k -> Label.Int k in
    Label.Pair (s.color, chosen)

  let decode = function
    | Label.Pair (color, Label.Unit) -> color, None
    | Label.Pair (color, Label.Int k) -> color, Some k
    | _ -> invalid_arg "det-coloring: malformed message"

  let smallest_free used =
    let rec go k = if List.mem k used then go (k + 1) else k in
    go 0

  let round s ~bit:_ ~inbox =
    let received = List.filter_map (Option.map decode) (Array.to_list inbox) in
    let s =
      match s.chosen with
      | Some _ -> s
      | None ->
        let undecided_colors =
          List.filter_map
            (fun (c, chosen) -> if chosen = None then Some c else None)
            received
        in
        let locally_minimal =
          List.for_all (fun c -> Label.compare s.color c < 0) undecided_colors
        in
        if locally_minimal && List.length received = s.degree then begin
          let used = List.filter_map (fun (_, chosen) -> chosen) received in
          let k = smallest_free used in
          { s with chosen = Some k; out = Some (Label.Int k) }
        end
        else s
    in
    s, Algorithm.broadcast ~degree:s.degree (msg s)

  let algorithm : Algorithm.t =
    (module struct
      type nonrec state = state

      let name = name

      let init = init

      let round = round

      let output = output
    end)
end

(* ---------- Greedy matching ---------- *)

module Matching = struct
  let name = "det-matching-from-2hop"

  (* Three-round phases:
       R1 (commit/announce): a proposer finding an accept on its pending
           port commits; everyone broadcasts (status, color).
       R2 (propose): a locally color-minimal undecided node sends "p" on
           the port of its smallest-colored undecided neighbor.
       R3 (accept): an undecided non-proposer picks the smallest-colored
           proposing port, sends "a" there, and commits. *)
  type status =
    | Undecided
    | Matched of int
    | Done_unmatched

  type step =
    | Commit
    | Propose
    | Accept

  type state = {
    degree : int;
    color : Label.t;
    status : status;
    step : step;
    pending : int option;  (* port proposed on, awaiting accept *)
    nbr_status : string array;
    nbr_color : Label.t option array;
    out : Label.t option;
  }

  let init ~input ~degree =
    {
      degree;
      color = color_of_input input;
      status = Undecided;
      step = Commit;
      pending = None;
      nbr_status = Array.make degree "?";
      nbr_color = Array.make degree None;
      out = None;
    }

  let output s = s.out

  let status_tag = function
    | Undecided -> "u"
    | Matched _ -> "m"
    | Done_unmatched -> "d"

  let announce s = Label.Pair (Label.Str (status_tag s.status), s.color)

  let undecided_ports s =
    List.filter (fun p -> s.nbr_status.(p) = "u") (List.init s.degree (fun p -> p))

  (* The port among [ports] whose neighbor has the smallest color; ports
     carry distinct colors under a 2-hop coloring. *)
  let min_color_port s ports =
    let color p = Option.get s.nbr_color.(p) in
    match ports with
    | [] -> None
    | p0 :: rest ->
      Some
        (List.fold_left
           (fun best p -> if Label.compare (color p) (color best) < 0 then p else best)
           p0 rest)

  let round s ~bit:_ ~inbox =
    match s.step with
    | Commit ->
      let s =
        match s.status, s.pending with
        | Undecided, Some port ->
          if inbox.(port) = Some (Label.Str "a") then
            { s with status = Matched port; out = Some (Label.Int port); pending = None }
          else { s with pending = None }
        | (Undecided | Matched _ | Done_unmatched), _ -> { s with pending = None }
      in
      { s with step = Propose }, Algorithm.broadcast ~degree:s.degree (announce s)
    | Propose ->
      (* inbox: everyone's (status, color) announcements *)
      let nbr_status = Array.copy s.nbr_status in
      let nbr_color = Array.copy s.nbr_color in
      Array.iteri
        (fun p m ->
          match m with
          | Some (Label.Pair (Label.Str st, c)) ->
            nbr_status.(p) <- st;
            nbr_color.(p) <- Some c
          | Some _ -> invalid_arg "det-matching: malformed announcement"
          | None -> ())
        inbox;
      let s = { s with nbr_status; nbr_color; step = Accept } in
      (match s.status with
       | Matched _ | Done_unmatched -> s, Algorithm.silence ~degree:s.degree
       | Undecided ->
         let undecided = undecided_ports s in
         if undecided = [] && Array.for_all (fun st -> st <> "?") s.nbr_status then begin
           let s = { s with status = Done_unmatched; out = Some Label.Unit } in
           s, Algorithm.silence ~degree:s.degree
         end
         else begin
           let locally_minimal =
             List.for_all
               (fun p -> Label.compare s.color (Option.get s.nbr_color.(p)) < 0)
               undecided
           in
           match min_color_port s undecided with
           | Some port when locally_minimal ->
             let s = { s with pending = Some port } in
             let sends = Array.make s.degree None in
             sends.(port) <- Some (Label.Str "p");
             s, sends
           | Some _ | None -> s, Algorithm.silence ~degree:s.degree
         end)
    | Accept ->
      let s = { s with step = Commit } in
      (match s.status, s.pending with
       | Undecided, None ->
         let proposals =
           List.filter (fun p -> inbox.(p) = Some (Label.Str "p"))
             (List.init s.degree (fun p -> p))
         in
         (match min_color_port s proposals with
          | Some port ->
            let s = { s with status = Matched port; out = Some (Label.Int port) } in
            let sends = Array.make s.degree None in
            sends.(port) <- Some (Label.Str "a");
            s, sends
          | None -> s, Algorithm.silence ~degree:s.degree)
       | (Undecided | Matched _ | Done_unmatched), _ ->
         s, Algorithm.silence ~degree:s.degree)
end

(* ---------- 2-hop color reduction ---------- *)

module Two_hop_recoloring = struct
  let name = "det-2hop-recoloring"

  (* Three-round phases mirroring the randomized 2-hop algorithm's
     communication pattern: announce (priority, chosen), relay the heard
     multiset, decide.  The input 2-hop colors act as priorities; since
     they are pairwise distinct within two hops, a node can recognize its
     own echo in the relayed multisets by value. *)
  type step =
    | Announce
    | Relay
    | Decide

  type state = {
    degree : int;
    priority : Label.t;  (* the input 2-hop color *)
    chosen : int option;
    step : step;
    heard : (Label.t * int option) array;  (* 1-hop announcements *)
    out : Label.t option;
  }

  let init ~input ~degree =
    {
      degree;
      priority = color_of_input input;
      chosen = None;
      step = Announce;
      heard = [||];
      out = None;
    }

  let output s = s.out

  let encode_entry (priority, chosen) =
    let c = match chosen with None -> Label.Unit | Some k -> Label.Int k in
    Label.Pair (priority, c)

  let decode_entry = function
    | Label.Pair (priority, Label.Unit) -> priority, None
    | Label.Pair (priority, Label.Int k) -> priority, Some k
    | _ -> invalid_arg "det-2hop-recoloring: malformed entry"

  let smallest_free used =
    let rec go k = if List.mem k used then go (k + 1) else k in
    go 0

  let round s ~bit:_ ~inbox =
    match s.step with
    | Announce ->
      ( { s with step = Relay },
        Algorithm.broadcast ~degree:s.degree (encode_entry (s.priority, s.chosen)) )
    | Relay ->
      let heard = Array.map (fun m -> decode_entry (Option.get m)) inbox in
      let relay =
        Label.List (List.map encode_entry (Array.to_list heard))
      in
      { s with step = Decide; heard }, Algorithm.broadcast ~degree:s.degree relay
    | Decide ->
      let two_hop =
        Array.to_list inbox
        |> List.concat_map (fun m -> List.map decode_entry (Label.to_list (Option.get m)))
      in
      let entries = Array.to_list s.heard @ two_hop in
      (* Drop own echoes: within two hops only this node carries this
         priority. *)
      let others =
        List.filter (fun (p, _) -> not (Label.equal p s.priority)) entries
      in
      let s =
        match s.chosen with
        | Some _ -> s
        | None ->
          let locally_minimal =
            List.for_all
              (fun (p, chosen) -> chosen <> None || Label.compare s.priority p < 0)
              others
          in
          if locally_minimal then begin
            let used = List.filter_map snd others in
            let k = smallest_free used in
            { s with chosen = Some k; out = Some (Label.Int k) }
          end
          else s
      in
      { s with step = Announce; heard = [||] }, Algorithm.silence ~degree:s.degree
end

let mis = Mis.algorithm

let coloring = Coloring.algorithm

let matching : Algorithm.t =
  (module struct
    type state = Matching.state

    let name = Matching.name

    let init = Matching.init

    let round = Matching.round

    let output = Matching.output
  end)

let two_hop_recoloring : Algorithm.t =
  (module struct
    type state = Two_hop_recoloring.state

    let name = Two_hop_recoloring.name

    let init = Two_hop_recoloring.init

    let round = Two_hop_recoloring.round

    let output = Two_hop_recoloring.output
  end)
