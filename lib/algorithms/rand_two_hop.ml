module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-2hop-coloring"

(* Phase structure (3 rounds per phase):
     Announce: send own candidate on all ports.
     Relay:    receive announcements; send their sorted multiset.
     Decide:   receive relays; detect conflicts; append the random bit or
               finalize.
   The [step] field names the sub-round the node is about to perform. *)

type step =
  | Announce
  | Relay
  | Decide

type state = {
  degree : int;
  cand : Bits.t;
  final : bool;
  out : Label.t option;
  step : step;
  heard : Bits.t array;  (* candidates announced by neighbors, port-indexed *)
}

let init ~input:_ ~degree =
  { degree; cand = Bits.empty; final = false; out = None; step = Announce; heard = [||] }

let output s = s.out

let announce_msg cand = Label.Bits cand

let relay_msg heard =
  Label.List (List.sort Label.compare (List.map (fun b -> Label.Bits b) (Array.to_list heard)))

let decode_announce = function
  | Some (Label.Bits b) -> b
  | _ -> invalid_arg "rand-2hop: malformed announce"

let decode_relay = function
  | Some (Label.List xs) -> List.map Label.to_bits xs
  | _ -> invalid_arg "rand-2hop: malformed relay"

(* Conflict: some neighbor announced my candidate, or my candidate occurs
   at least twice in some neighbor's relayed multiset (once for me, once
   for a distinct node within two hops). *)
let in_conflict cand heard relays =
  Array.exists (Bits.equal cand) heard
  || List.exists
       (fun multiset ->
         List.length (List.filter (Bits.equal cand) multiset) >= 2)
       relays

let round s ~bit ~inbox =
  match s.step with
  | Announce ->
    { s with step = Relay }, Algorithm.broadcast ~degree:s.degree (announce_msg s.cand)
  | Relay ->
    let heard = Array.map decode_announce inbox in
    { s with step = Decide; heard }, Algorithm.broadcast ~degree:s.degree (relay_msg heard)
  | Decide ->
    let relays = Array.to_list (Array.map decode_relay inbox) in
    let s =
      if s.final then s
      else if in_conflict s.cand s.heard relays then
        { s with cand = Bits.append s.cand bit }
      else { s with final = true; out = Some (Label.Bits s.cand) }
    in
    { s with step = Announce; heard = [||] }, Algorithm.silence ~degree:s.degree

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)
