module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-2hop-coloring"

(* Phase structure (3 rounds per phase):
     Announce: send own candidate on all ports.
     Relay:    receive announcements; send their sorted multiset.
     Decide:   receive relays; detect conflicts; append the random bit or
               finalize.
   The [step] field names the sub-round the node is about to perform. *)

type step =
  | Announce
  | Relay
  | Decide

type state = {
  degree : int;
  cand : Bits.t;
  final : bool;
  out : Label.t option;
  step : step;
  heard : Bits.t array;  (* candidates announced by neighbors, port-indexed *)
}

let init ~input:_ ~degree =
  { degree; cand = Bits.empty; final = false; out = None; step = Announce; heard = [||] }

let output s = s.out

let announce_msg cand = Label.Bits cand

let relay_msg heard =
  Label.List (List.sort Label.compare (List.map (fun b -> Label.Bits b) (Array.to_list heard)))

let decode_announce = function
  | Some (Label.Bits b) -> b
  | _ -> invalid_arg "rand-2hop: malformed announce"

let decode_relay = function
  | Some (Label.List xs) -> List.map Label.to_bits xs
  | _ -> invalid_arg "rand-2hop: malformed relay"

(* Conflict: some neighbor announced my candidate, or my candidate occurs
   at least twice in some neighbor's relayed multiset (once for me, once
   for a distinct node within two hops). *)
let in_conflict cand heard relays =
  Array.exists (Bits.equal cand) heard
  || List.exists
       (fun multiset ->
         List.length (List.filter (Bits.equal cand) multiset) >= 2)
       relays

let round s ~bit ~inbox =
  match s.step with
  | Announce ->
    { s with step = Relay }, Algorithm.broadcast ~degree:s.degree (announce_msg s.cand)
  | Relay ->
    let heard = Array.map decode_announce inbox in
    { s with step = Decide; heard }, Algorithm.broadcast ~degree:s.degree (relay_msg heard)
  | Decide ->
    let relays = Array.to_list (Array.map decode_relay inbox) in
    let s =
      if s.final then s
      else if in_conflict s.cand s.heard relays then
        { s with cand = Bits.append s.cand bit }
      else { s with final = true; out = Some (Label.Bits s.cand) }
    in
    { s with step = Announce; heard = [||] }, Algorithm.silence ~degree:s.degree

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)

(* Flat companion.

   A candidate bitstring packs into one word as [(1 lsl len) lor value]
   (value big-endian): the sentinel bit makes the encoding injective
   across lengths, appending a bit is [code * 2 + bit], and the numeric
   order coincides with [Bits.compare] (length-major, then
   lexicographic) — so sorting relay words numerically reproduces the
   boxed sorted multiset exactly.  The empty candidate is code 1; code 0
   doubles as "no message" in inbox slots and "no announcement stored"
   in the heard words.

   State span (2 + max-degree words): word 0 = step (bits 0-1) lor
   final flag (bit 2); word 1 = candidate code; words 2.. = heard
   announcement codes, port-indexed, zeroed outside the Relay->Decide
   window — mirroring the boxed [heard = [||]] so the two
   representations deduplicate identically.  Message span (1 +
   max-degree words): an announce is [cand-code, 0...]; a relay is
   [count, sorted codes..., 0...].  Receivers know which to expect from
   their own step; Decide rounds are silent on both paths. *)

let code_overflow_bit = 1 lsl 59

let decode_code code =
  let len = ref 0 in
  while code lsr !len > 1 do incr len done;
  Bits.of_int ~width:!len (code - (1 lsl !len))

let flat_plan g =
  let maxdeg = ref 0 in
  for v = 0 to Anonet_graph.Graph.n g - 1 do
    maxdeg := max !maxdeg (Anonet_graph.Graph.degree g v)
  done;
  let maxdeg = !maxdeg in
  let sw = 2 + maxdeg in
  let mw = 1 + maxdeg in
  Some
    {
      Algorithm.Flat.state_words = sw;
      msg_words = mw;
      init =
        (fun ~node:_ ~input:_ ~degree:_ ~state ~off ->
          Array.unsafe_set state (off + 1) 1 (* empty candidate *));
      round =
        (fun ~node:_ ~bit ~degree ~state ~off ~inbox ~ioff ~send ~soff ->
          let w0 = Array.unsafe_get state off in
          match w0 land 3 with
          | 0 ->
            (* Announce: broadcast the candidate code. *)
            Array.unsafe_set state off (w0 lor 1);
            Array.unsafe_set send soff (Array.unsafe_get state (off + 1));
            for k = 1 to mw - 1 do
              Array.unsafe_set send (soff + k) 0
            done;
            true
          | 1 ->
            (* Relay: store announcements, broadcast their sorted multiset. *)
            for p = 0 to degree - 1 do
              Array.unsafe_set state (off + 2 + p)
                (Array.unsafe_get inbox (ioff + (p * mw)))
            done;
            Array.unsafe_set state off ((w0 land lnot 3) lor 2);
            Array.unsafe_set send soff degree;
            for p = 0 to degree - 1 do
              (* insertion sort as we copy: degree is tiny *)
              let c = Array.unsafe_get state (off + 2 + p) in
              let j = ref (soff + 1 + p) in
              while
                !j > soff + 1 && Array.unsafe_get send (!j - 1) > c
              do
                Array.unsafe_set send !j (Array.unsafe_get send (!j - 1));
                decr j
              done;
              Array.unsafe_set send !j c
            done;
            for k = degree + 1 to mw - 1 do
              Array.unsafe_set send (soff + k) 0
            done;
            true
          | _ ->
            (* Decide: detect conflicts, then return to Announce silently. *)
            let final = w0 land 4 <> 0 in
            let final =
              if final then true
              else begin
                let cand = Array.unsafe_get state (off + 1) in
                let conflict = ref false in
                for p = 0 to degree - 1 do
                  if Array.unsafe_get state (off + 2 + p) = cand then
                    conflict := true
                done;
                for p = 0 to degree - 1 do
                  let base = ioff + (p * mw) in
                  let cnt = Array.unsafe_get inbox base in
                  let occ = ref 0 in
                  for j = 1 to cnt do
                    if Array.unsafe_get inbox (base + j) = cand then incr occ
                  done;
                  if !occ >= 2 then conflict := true
                done;
                if !conflict then begin
                  if cand land code_overflow_bit <> 0 then
                    invalid_arg "rand-2hop: flat candidate overflow";
                  Array.unsafe_set state (off + 1)
                    ((cand * 2) + if bit then 1 else 0);
                  false
                end
                else true
              end
            in
            for p = 0 to degree - 1 do
              Array.unsafe_set state (off + 2 + p) 0
            done;
            Array.unsafe_set state off (if final then 4 else 0);
            false);
      output =
        (fun ~state ~off ->
          if Array.unsafe_get state off land 4 <> 0 then
            Some (Label.Bits (decode_code (Array.unsafe_get state (off + 1))))
          else None);
      has_output = (fun ~state ~off -> Array.unsafe_get state off land 4 <> 0);
    }

let () = Algorithm.register_flat algorithm { Algorithm.Flat.plan = flat_plan }
