module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-coloring"

type step =
  | Announce
  | Decide

type state = {
  degree : int;
  cand : Bits.t;
  final : bool;
  out : Label.t option;
  step : step;
}

let init ~input:_ ~degree =
  { degree; cand = Bits.empty; final = false; out = None; step = Announce }

let output s = s.out

let decode = function
  | Some (Label.Bits b) -> b
  | _ -> invalid_arg "rand-coloring: malformed announce"

let round s ~bit ~inbox =
  match s.step with
  | Announce ->
    { s with step = Decide }, Algorithm.broadcast ~degree:s.degree (Label.Bits s.cand)
  | Decide ->
    let heard = Array.map decode inbox in
    let s =
      if s.final then s
      else if Array.exists (Bits.equal s.cand) heard then
        { s with cand = Bits.append s.cand bit }
      else { s with final = true; out = Some (Label.Bits s.cand) }
    in
    { s with step = Announce }, Algorithm.silence ~degree:s.degree

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)
