(** Las-Vegas randomized (1-hop) graph coloring — the classic symmetry
    breaking problem of the paper's introduction, in GRAN.

    Same growing-bitstring scheme as {!Rand_two_hop} but conflicts are only
    with direct neighbors, so a phase needs just two rounds (announce,
    decide).  Output: [Label.Bits color]. *)

include Anonet_runtime.Algorithm.S

val algorithm : Anonet_runtime.Algorithm.t
