module Label = Anonet_graph.Label
module Algorithm = Anonet_runtime.Algorithm

let name = "rand-matching"

type status =
  | Active
  | Matched of int  (* port *)
  | Done_unmatched

type step =
  | Propose
  | Accept
  | Commit

type state = {
  degree : int;
  status : status;
  step : step;
  phase : int;
  nbr_status : string array;  (* last heard status per port; "?" initially *)
  proposed_port : int option;
  out : Label.t option;
}

let init ~input:_ ~degree =
  {
    degree;
    status = Active;
    step = Propose;
    phase = 0;
    nbr_status = Array.make degree "?";
    proposed_port = None;
    out = None;
  }

let output s = s.out

let status_tag = function
  | Active -> "active"
  | Matched _ -> "matched"
  | Done_unmatched -> "done"

let msg s tag = Label.Pair (Label.Str (status_tag s.status), Label.Str tag)

let decode = function
  | Label.Pair (Label.Str status, Label.Str tag) -> status, tag
  | _ -> invalid_arg "rand-matching: malformed message"

(* Fold the inbox into the port-indexed last-known neighbor statuses and
   return the tags received per port ("-" where nothing arrived). *)
let absorb s inbox =
  let nbr_status = Array.copy s.nbr_status in
  let tags = Array.make s.degree "-" in
  Array.iteri
    (fun p m ->
      match m with
      | None -> ()
      | Some m ->
        let status, tag = decode m in
        nbr_status.(p) <- status;
        tags.(p) <- tag)
    inbox;
  { s with nbr_status }, tags

let eligible_ports s =
  List.filter
    (fun p -> s.nbr_status.(p) = "active" || s.nbr_status.(p) = "?")
    (List.init s.degree (fun p -> p))

let statuses_only s = Algorithm.broadcast ~degree:s.degree (msg s "-")

let round s ~bit ~inbox =
  let s, tags = absorb s inbox in
  match s.step with
  | Propose ->
    let s = { s with step = Accept; phase = s.phase + 1 } in
    (match s.status with
     | Matched _ | Done_unmatched -> s, statuses_only s
     | Active ->
       (match eligible_ports s with
        | [] ->
          let s = { s with status = Done_unmatched; out = Some Label.Unit } in
          s, statuses_only s
        | eligible ->
          if bit then begin
            (* Proposer: offer to one eligible neighbor, cycling by phase. *)
            let port = List.nth eligible (s.phase mod List.length eligible) in
            let s = { s with proposed_port = Some port } in
            let sends =
              Array.init s.degree (fun p ->
                  Some (msg s (if p = port then "p" else "-")))
            in
            s, sends
          end
          else s, statuses_only s))
  | Accept ->
    let s = { s with step = Commit } in
    (match s.status, s.proposed_port with
     | Active, None ->
       (* Responder: accept the lowest-port proposal, if any. *)
       let proposals =
         List.filter (fun p -> tags.(p) = "p") (List.init s.degree (fun p -> p))
       in
       (match proposals with
        | [] -> s, statuses_only s
        | port :: _ ->
          let s = { s with status = Matched port; out = Some (Label.Int port) } in
          let sends =
            Array.init s.degree (fun p ->
                Some (msg s (if p = port then "a" else "-")))
          in
          s, sends)
     | (Active | Matched _ | Done_unmatched), _ -> s, statuses_only s)
  | Commit ->
    let s = { s with step = Propose } in
    (match s.status, s.proposed_port with
     | Active, Some port ->
       let s = { s with proposed_port = None } in
       if tags.(port) = "a" then begin
         let s = { s with status = Matched port; out = Some (Label.Int port) } in
         s, statuses_only s
       end
       else s, statuses_only s
     | (Active | Matched _ | Done_unmatched), _ ->
       { s with proposed_port = None }, statuses_only s)

let algorithm : Algorithm.t =
  (module struct
    type nonrec state = state

    let name = name

    let init = init

    let round = round

    let output = output
  end)
