(** GRAN witnesses for the catalog problems: each bundle pairs a problem
    with a randomized anonymous solver and a decider, in the form the
    derandomization machinery consumes. *)

val coloring : Anonet_problems.Gran.t

val two_hop_coloring : Anonet_problems.Gran.t

val mis : Anonet_problems.Gran.t

val maximal_matching : Anonet_problems.Gran.t

(** All of the above, for sweeping tests/benches. *)
val all : Anonet_problems.Gran.t list
