(** Deterministic algorithms that consume a 2-hop coloring.

    These witness the "decoupling" reading of Theorem 1 concretely and
    cheaply: once the generic randomized preprocessing has produced a 2-hop
    coloring, natural problem-specific deterministic algorithms finish the
    job — far more efficiently than the generic simulation [A*], which is
    what makes the corollary practically interesting.

    Both algorithms expect instances in the [Π^c] convention: node labels
    of the form [Pair (input, color)] where the colors form a 2-hop
    coloring (a bare non-pair label is tolerated and treated as the color
    itself).  A 2-hop coloring makes neighbors' colors pairwise distinct,
    so "my color is the local minimum" is a well-founded, deterministic
    tiebreak. *)

(** Greedy MIS by color order: an undecided node joins when its color is
    smallest among undecided neighbors, leaves when a neighbor joined.
    Output: [Label.Bool in_mis]. *)
val mis : Anonet_runtime.Algorithm.t

(** Greedy coloring by color order: when locally minimal among undecided
    neighbors, pick the smallest nonnegative integer unused by decided
    neighbors.  Produces at most [Δ+1] colors.  Output: [Label.Int color]. *)
val coloring : Anonet_runtime.Algorithm.t

(** Greedy maximal matching by color order: an undecided node whose color
    is locally minimal proposes to its smallest-colored undecided
    neighbor; a non-proposer accepts its smallest-colored proposer.  The
    2-hop coloring makes all tiebreaks well-founded: neighbors have
    distinct colors (local minima are unique per closed neighborhood, so
    proposers never face proposals), and two proposers courting the same
    node are 2 hops apart, hence also distinctly colored.  Three-round
    phases (commit/announce, propose, accept); the globally minimal
    undecided color always secures a match, so at least one edge joins the
    matching per phase.  Output: [Label.Int port] or [Label.Unit]. *)
val matching : Anonet_runtime.Algorithm.t

(** 2-hop color {e reduction}: recolor a 2-hop coloring with arbitrary
    labels (e.g. the growing bitstrings of the Las-Vegas stage) down to a
    small integer palette, deterministically.  Greedy by color order over
    2-hop neighborhoods (three-round phases: announce, relay, decide),
    producing at most [Δ² + 1] colors — minimizing the count is
    NP-complete (McCormick [35], cited in Section 1.3), so greedy is the
    right tool.  Output: [Label.Int color], a proper 2-hop coloring. *)
val two_hop_recoloring : Anonet_runtime.Algorithm.t
