(** Las-Vegas randomized 2-hop coloring — the generic preprocessing stage of
    the paper's decoupling result, and itself a member of GRAN.

    Every node grows a candidate bitstring, one random bit per phase, until
    the candidate differs from every candidate within two hops.  A phase
    takes three rounds: nodes {e announce} their candidates, {e relay} the
    multiset of candidates they heard, and {e decide} — a node in conflict
    appends this round's random bit, a conflict-free node finalizes its
    candidate as its color (irrevocably, as the model demands).

    Correctness invariants (checked by the test suite):
    - all still-active nodes have candidates of equal length (one bit per
      elapsed phase), so conflicts are only ever between active nodes and
      resolve with probability 1/2 per phase per pair;
    - a finalized candidate is strictly shorter than any candidate still
      growing, and bitstrings of different lengths are distinct labels, so
      finalized colors can never be collided with.

    The output at each node is [Label.Bits color]. *)

include Anonet_runtime.Algorithm.S

(** The algorithm as a first-class value. *)
val algorithm : Anonet_runtime.Algorithm.t
