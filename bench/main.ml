(* The experiment harness and benchmark suite.

   The paper (PODC 2014) is a theory paper: its "evaluation" consists of
   three constructions (Figure 1: local views; Figure 2: factor/product
   chain; Figure 3: the deterministic algorithm A✱) and the theorems they
   support.  This harness regenerates, for every figure and theorem, an
   executable experiment whose series EXPERIMENTS.md records:

     F1  Figure 1   — depth-d local views of the labeled C6
     F2  Figure 2   — the C3 ⪯ C6 ⪯ C12 factor chain, generalized to lifts
     F3  Figure 3   — A*  (Theorem 1): deterministic solutions of Π^c
     T2  Theorem 2  — A∞: derandomization cost tracks |V*|, not |V|
     T3  Theorem 3  — Norris: view stabilization depth <= n
     L   Lemmas 2-4 — view graphs are factors; prime factors are unique
     A1  ablation   — minimal-simulation search cost vs |V*| (exponential)
     A2  ablation   — coloring granularity vs view graph size vs cost
     A3  ablation   — decoupled pipeline vs direct randomized algorithm

   After the harness, Bechamel micro-benchmarks time the core operations
   (one group per experiment id).

   Run with:  dune exec bench/main.exe            (full: harness + timings)
              dune exec bench/main.exe -- harness (harness only)
*)

open Anonet_graph
open Anonet_views
module Gran = Anonet_problems.Gran
module Problem = Anonet_problems.Problem
module Las_vegas = Anonet_runtime.Las_vegas
module Bundles = Anonet_algorithms.Bundles
open Anonet

let header title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (72 - String.length title)) '=')

let colored_instance g colors = Problem.attach_coloring g colors

let c6_instance () =
  colored_instance (Gen.cycle 6) (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1)))

let cycle_mod_colors n k =
  colored_instance (Gen.cycle n) (Array.init n (fun v -> Label.Int (v mod k)))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_tests () =
  let c6 = Gen.c6_figure1 () in
  let c6i = c6_instance () in
  let c12i = cycle_mod_colors 12 3 in
  let pet = Gen.label_with_ints (Gen.petersen ()) in
  let lift = Lift.random ~seed:3 pet ~k:3 in
  let fig1 =
    Test.make_grouped ~name:"fig1-views"
      [
        Test.make ~name:"view-depth3-c6"
          (Staged.stage (fun () -> View.of_graph c6 ~root:0 ~depth:3));
        Test.make ~name:"view-depth8-c6"
          (Staged.stage (fun () -> View.of_graph c6 ~root:0 ~depth:8));
        Test.make ~name:"knowledge-depth12-c6"
          (Staged.stage (fun () -> Anonet.Knowledge.view_of_graph c6 ~root:0 ~depth:12));
      ]
  in
  let fig2 =
    Test.make_grouped ~name:"fig2-factors"
      [
        Test.make ~name:"view-graph-c12"
          (Staged.stage (fun () -> View_graph.of_graph_exn c12i));
        Test.make ~name:"view-graph-petersen-lift30"
          (Staged.stage (fun () -> View_graph.of_graph_exn lift.Lift.graph));
        Test.make ~name:"refinement-petersen"
          (Staged.stage (fun () -> Refinement.run pet));
        Test.make ~name:"iso-petersen" (Staged.stage (fun () -> Iso.equal pet pet));
      ]
  in
  let fig3 =
    Test.make_grouped ~name:"fig3-derandomization"
      [
        Test.make ~name:"a-star-mis-c6"
          (Staged.stage (fun () ->
               match A_star.solve ~gran:Bundles.mis c6i () with
               | Ok _ -> ()
               | Error m -> failwith m));
        Test.make ~name:"a-infinity-mis-c6"
          (Staged.stage (fun () ->
               match A_infinity.solve ~gran:Bundles.mis c6i () with
               | Ok _ -> ()
               | Error m -> failwith m));
        Test.make ~name:"a-infinity-mis-c12"
          (Staged.stage (fun () ->
               match A_infinity.solve ~gran:Bundles.mis c12i () with
               | Ok _ -> ()
               | Error m -> failwith m));
      ]
  in
  let searches =
    Test.make_grouped ~name:"ablate-bits"
      (List.map
         (fun k ->
           let g = Gen.label_with_ints (if k = 2 then Gen.path 2 else Gen.cycle k) in
           Test.make ~name:(Printf.sprintf "min-search-mis-k%d" k)
             (Staged.stage (fun () ->
                  Min_search.minimal_successful
                    ~solver:Anonet_algorithms.Rand_mis.algorithm g
                    ~base:(Bit_assignment.empty k) ~len:(Min_search.At_most 16) ())))
         [ 2; 3; 4; 5 ])
  in
  let pipeline =
    Test.make_grouped ~name:"decouple"
      [
        Test.make ~name:"direct-rand-mis-petersen"
          (Staged.stage (fun () ->
               Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
                 ~seed:5 ()));
        Test.make ~name:"decoupled-mis-petersen"
          (Staged.stage (fun () ->
               Decouple.solve ~gran:Bundles.mis (Gen.petersen ()) ~seed:5
                 ~stage_two:(Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis)
                 ()));
        Test.make ~name:"recolor-2hop-petersen"
          (Staged.stage (fun () ->
               Decouple.solve ~gran:Bundles.two_hop_coloring (Gen.petersen ())
                 ~seed:5
                 ~stage_two:
                   (Decouple.Specific
                      Anonet_algorithms.Det_from_two_hop.two_hop_recoloring)
                 ()));
      ]
  in
  let substrates =
    let tape = Anonet_runtime.Tape.random ~seed:11 in
    Test.make_grouped ~name:"substrates"
      [
        Test.make ~name:"sync-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_runtime.Executor.run Anonet_algorithms.Rand_two_hop.algorithm
                 (Gen.petersen ()) ~tape ~max_rounds:2000));
        Test.make ~name:"async-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_runtime.Async.run Anonet_algorithms.Rand_two_hop.algorithm
                 (Gen.petersen ()) ~tape
                 ~scheduler:(Anonet_runtime.Async.Random_delay { seed = 3; max_delay = 5 })
                 ~max_events:2_000_000));
        Test.make ~name:"stoneage-mis-petersen"
          (Staged.stage (fun () ->
               Anonet_stoneage.Engine.run Anonet_stoneage.Mis.machine
                 (Gen.petersen ()) ~seed:3 ~max_rounds:100_000));
        Test.make ~name:"stoneage-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_stoneage.Engine.run
                 (Anonet_stoneage.Two_hop.make ~palette:10)
                 (Gen.petersen ()) ~seed:4 ~max_rounds:1_000_000));
      ]
  in
  let faults =
    (* The retransmission wrapper's overhead: the loss-0 row against
       sync-2hop-petersen of the substrates group isolates the pure
       wrapper cost (acks + windows on a fault-free network); the loss-20
       row adds the actual recovery work.  A fresh injector per run —
       injectors are stateful. *)
    let tape = Anonet_runtime.Tape.random ~seed:11 in
    let module Faults = Anonet_runtime.Faults in
    let wrapped =
      Anonet_runtime.Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm
    in
    Test.make_grouped ~name:"faults"
      [
        Test.make ~name:"retransmit-2hop-petersen-loss0"
          (Staged.stage (fun () ->
               Anonet_runtime.Executor.run wrapped (Gen.petersen ()) ~tape
                 ~max_rounds:2000));
        Test.make ~name:"retransmit-2hop-petersen-loss20"
          (Staged.stage (fun () ->
               Anonet_runtime.Executor.run wrapped (Gen.petersen ()) ~tape
                 ~faults:(Faults.make (Faults.with_loss 0.2 ~seed:7))
                 ~max_rounds:2000));
      ]
  in
  Test.make_grouped ~name:"anonet"
    [ fig1; fig2; fig3; searches; pipeline; substrates; faults ]

let run_benchmarks () =
  header "Bechamel micro-benchmarks (monotonic clock per run)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:true () in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  List.iter (fun v -> Bechamel_notty.Unit.add v (Measure.unit v)) instances;
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)

let run_harness () = Anonet_experiments.Experiments.run_all ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "harness" :: _ -> run_harness ()
  | _ :: "bench" :: _ -> run_benchmarks ()
  | _ ->
    run_harness ();
    run_benchmarks ()
