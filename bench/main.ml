(* The experiment harness and benchmark suite.

   The paper (PODC 2014) is a theory paper: its "evaluation" consists of
   three constructions (Figure 1: local views; Figure 2: factor/product
   chain; Figure 3: the deterministic algorithm A✱) and the theorems they
   support.  This harness regenerates, for every figure and theorem, an
   executable experiment whose series EXPERIMENTS.md records:

     F1  Figure 1   — depth-d local views of the labeled C6
     F2  Figure 2   — the C3 ⪯ C6 ⪯ C12 factor chain, generalized to lifts
     F3  Figure 3   — A*  (Theorem 1): deterministic solutions of Π^c
     T2  Theorem 2  — A∞: derandomization cost tracks |V*|, not |V|
     T3  Theorem 3  — Norris: view stabilization depth <= n
     L   Lemmas 2-4 — view graphs are factors; prime factors are unique
     A1  ablation   — minimal-simulation search cost vs |V*| (exponential)
     A2  ablation   — coloring granularity vs view graph size vs cost
     A3  ablation   — decoupled pipeline vs direct randomized algorithm

   After the harness, Bechamel micro-benchmarks time the core operations
   (one group per experiment id).

   Run with:  dune exec bench/main.exe                    (harness + timings)
              dune exec bench/main.exe -- harness         (harness only)
              dune exec bench/main.exe -- bench           (timings only)
              dune exec bench/main.exe -- bench-json PATH (timings + pool
                                          scaling, written to PATH as JSON)
*)

open Anonet_graph
open Anonet_views
module Gran = Anonet_problems.Gran
module Problem = Anonet_problems.Problem
module Las_vegas = Anonet_runtime.Las_vegas
module Run_ctx = Anonet_runtime.Run_ctx
module Bundles = Anonet_algorithms.Bundles
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics
open Anonet

let header title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (72 - String.length title)) '=')

let colored_instance g colors = Problem.attach_coloring g colors

let c6_instance () =
  colored_instance (Gen.cycle 6) (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1)))

let cycle_mod_colors n k =
  colored_instance (Gen.cycle n) (Array.init n (fun v -> Label.Int (v mod k)))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* The pre-CSR adjacency build, preserved verbatim as the bench baseline
   for the huge-graphs group: validate through a Hashtbl of canonicalized
   tuples, scatter into per-node bucket lists, then List.sort +
   Array.of_list each bucket.  This was [Graph.create]'s implementation
   before the flat builder; keeping it callable is what lets BENCH.json
   track the representation swap as a measured ratio instead of a
   historical claim. *)
let legacy_adjacency ~n edges =
  let seen = Hashtbl.create (List.length edges) in
  let canonical (u, v) = if u < v then u, v else v, u in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "legacy: edge (%d, %d) out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "legacy: self-loop at %d" u);
      let e = canonical (u, v) in
      if Hashtbl.mem seen e then
        invalid_arg (Printf.sprintf "legacy: duplicate edge (%d, %d)" u v);
      Hashtbl.add seen e ())
    edges;
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  Array.map (fun nbrs -> Array.of_list (List.sort Int.compare nbrs)) buckets

let bench_tests () =
  let c6 = Gen.c6_figure1 () in
  let c6i = c6_instance () in
  let c12i = cycle_mod_colors 12 3 in
  let pet = Gen.label_with_ints (Gen.petersen ()) in
  let lift = Lift.random ~seed:3 pet ~k:3 in
  let fig1 =
    Test.make_grouped ~name:"fig1-views"
      [
        Test.make ~name:"view-depth3-c6"
          (Staged.stage (fun () -> View.of_graph c6 ~root:0 ~depth:3));
        Test.make ~name:"view-depth8-c6"
          (Staged.stage (fun () -> View.of_graph c6 ~root:0 ~depth:8));
        Test.make ~name:"knowledge-depth12-c6"
          (Staged.stage (fun () -> Anonet.Knowledge.view_of_graph c6 ~root:0 ~depth:12));
      ]
  in
  let fig2 =
    Test.make_grouped ~name:"fig2-factors"
      [
        Test.make ~name:"view-graph-c12"
          (Staged.stage (fun () -> View_graph.of_graph_exn c12i));
        Test.make ~name:"view-graph-petersen-lift30"
          (Staged.stage (fun () -> View_graph.of_graph_exn lift.Lift.graph));
        Test.make ~name:"refinement-petersen"
          (Staged.stage (fun () -> Refinement.run pet));
        Test.make ~name:"iso-petersen" (Staged.stage (fun () -> Iso.equal pet pet));
      ]
  in
  let fig3 =
    Test.make_grouped ~name:"fig3-derandomization"
      [
        Test.make ~name:"a-star-mis-c6"
          (Staged.stage (fun () ->
               match A_star.solve ~gran:Bundles.mis c6i () with
               | Ok _ -> ()
               | Error m -> failwith m));
        Test.make ~name:"a-infinity-mis-c6"
          (Staged.stage (fun () ->
               match A_infinity.solve ~gran:Bundles.mis c6i () with
               | Ok _ -> ()
               | Error m -> failwith m));
        Test.make ~name:"a-infinity-mis-c12"
          (Staged.stage (fun () ->
               match A_infinity.solve ~gran:Bundles.mis c12i () with
               | Ok _ -> ()
               | Error m -> failwith m));
      ]
  in
  let searches =
    Test.make_grouped ~name:"ablate-bits"
      (List.map
         (fun k ->
           let g = Gen.label_with_ints (if k = 2 then Gen.path 2 else Gen.cycle k) in
           Test.make ~name:(Printf.sprintf "min-search-mis-k%d" k)
             (Staged.stage (fun () ->
                  Min_search.minimal_successful
                    ~solver:Anonet_algorithms.Rand_mis.algorithm g
                    ~base:(Bit_assignment.empty k) ~len:(Min_search.At_most 16) ())))
         [ 2; 3; 4; 5 ])
  in
  let pipeline =
    Test.make_grouped ~name:"decouple"
      [
        Test.make ~name:"direct-rand-mis-petersen"
          (Staged.stage (fun () ->
               Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
                 ~seed:5 ()));
        Test.make ~name:"decoupled-mis-petersen"
          (Staged.stage (fun () ->
               Decouple.solve ~gran:Bundles.mis (Gen.petersen ()) ~seed:5
                 ~stage_two:(Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis)
                 ()));
        Test.make ~name:"recolor-2hop-petersen"
          (Staged.stage (fun () ->
               Decouple.solve ~gran:Bundles.two_hop_coloring (Gen.petersen ())
                 ~seed:5
                 ~stage_two:
                   (Decouple.Specific
                      Anonet_algorithms.Det_from_two_hop.two_hop_recoloring)
                 ()));
      ]
  in
  let substrates =
    let tape = Anonet_runtime.Tape.random ~seed:11 in
    Test.make_grouped ~name:"substrates"
      [
        Test.make ~name:"sync-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_runtime.Executor.run Anonet_algorithms.Rand_two_hop.algorithm
                 (Gen.petersen ()) ~tape ~max_rounds:2000));
        Test.make ~name:"async-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_runtime.Async.run Anonet_algorithms.Rand_two_hop.algorithm
                 (Gen.petersen ()) ~tape
                 ~scheduler:(Anonet_runtime.Async.Random_delay { seed = 3; max_delay = 5 })
                 ~max_events:2_000_000));
        Test.make ~name:"stoneage-mis-petersen"
          (Staged.stage (fun () ->
               Anonet_stoneage.Engine.run Anonet_stoneage.Mis.machine
                 (Gen.petersen ()) ~seed:3 ~max_rounds:100_000));
        Test.make ~name:"stoneage-2hop-petersen"
          (Staged.stage (fun () ->
               Anonet_stoneage.Engine.run
                 (Anonet_stoneage.Two_hop.make ~palette:10)
                 (Gen.petersen ()) ~seed:4 ~max_rounds:1_000_000));
      ]
  in
  let views_intern =
    (* The interning bugfix, measured directly: structural-vs-shared
       traversal of the same view value.  [naive_size] replicates the
       pre-interning [View.size] (walks the unfolded tree, ~5.6M vertices
       for the hypercube at depth 12); the shared rows walk the in-memory
       DAG (a few hundred nodes).  CI asserts the structural/shared ratio
       stays >= 10x. *)
    let hc4 = Gen.label_with_ints (Gen.hypercube 4) in
    let v12 = View.of_graph hc4 ~root:0 ~depth:12 in
    let rec naive_size (t : View.t) =
      1 + List.fold_left (fun s c -> s + naive_size c) 0 t.View.children
    in
    let k8 = Gen.label_with_ints (Gen.complete 8) in
    let k8v = Interned.of_graph k8 ~root:0 ~depth:16 in
    let pet = Gen.label_with_ints (Gen.petersen ()) in
    let c12i = cycle_mod_colors 12 3 in
    let vg = View_graph.of_graph_exn c12i in
    Test.make_grouped ~name:"views-intern"
      [
        Test.make ~name:"size-structural-hc4-d12"
          (Staged.stage (fun () -> naive_size v12));
        Test.make ~name:"size-shared-hc4-d12"
          (Staged.stage (fun () -> View.size v12));
        Test.make ~name:"of-graph-hc4-d12"
          (Staged.stage (fun () -> View.of_graph hc4 ~root:0 ~depth:12));
        Test.make ~name:"intern-of-graph-k8-d16"
          (Staged.stage (fun () -> Interned.of_graph k8 ~root:0 ~depth:16));
        Test.make ~name:"interned-size-k8-d16"
          (Staged.stage (fun () -> Interned.size k8v));
        Test.make ~name:"uc-classes-petersen-d8"
          (Staged.stage (fun () -> Universal_cover.classes_at_depth pet 8));
        Test.make ~name:"encode-canonical-c12"
          (Staged.stage (fun () -> View_graph.encoding vg));
      ]
  in
  let faults =
    (* The retransmission wrapper's overhead: the loss-0 row against
       sync-2hop-petersen of the substrates group isolates the pure
       wrapper cost (acks + windows on a fault-free network); the loss-20
       row adds the actual recovery work.  A fresh injector per run —
       injectors are stateful. *)
    let tape = Anonet_runtime.Tape.random ~seed:11 in
    let module Faults = Anonet_runtime.Faults in
    let wrapped =
      Anonet_runtime.Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm
    in
    Test.make_grouped ~name:"faults"
      [
        Test.make ~name:"retransmit-2hop-petersen-loss0"
          (Staged.stage (fun () ->
               Anonet_runtime.Executor.run wrapped (Gen.petersen ()) ~tape
                 ~max_rounds:2000));
        Test.make ~name:"retransmit-2hop-petersen-loss20"
          (Staged.stage
             (let ctx = Run_ctx.make ~faults:(Faults.with_loss 0.2 ~seed:7) () in
              fun () ->
                Anonet_runtime.Executor.run ~ctx wrapped (Gen.petersen ()) ~tape
                  ~max_rounds:2000));
      ]
  in
  let a_star_phases =
    (* The incremental phase engine, measured end to end: each pair runs
       the same derandomization warm (cross-phase search/simulation cache
       on, the default) and cold (cache off — every phase restarts its
       Update-Bits BFS from level 0).  CI asserts warm/cold >= 2x on the
       2hop-c6 pair, the deepest phase schedule of the family.  The
       instances are the C6/C12 cycle family of Figures 1-2; Petersen
       with unique colors is prime, so its generic Update-Bits search
       branches on all 10 nodes per round and blows the state budget
       long before the first successful extension — the inherent
       exponential the ablate-bits group already measures. *)
    let solve ?incremental gran inst () =
      match A_star.solve ~gran inst ?incremental () with
      | Ok _ -> ()
      | Error m -> failwith m
    in
    Test.make_grouped ~name:"a-star-phases"
      [
        Test.make ~name:"warm-mis-c6" (Staged.stage (solve Bundles.mis c6i));
        Test.make ~name:"cold-mis-c6"
          (Staged.stage (solve ~incremental:false Bundles.mis c6i));
        Test.make ~name:"warm-2hop-c6"
          (Staged.stage (solve Bundles.two_hop_coloring c6i));
        Test.make ~name:"cold-2hop-c6"
          (Staged.stage (solve ~incremental:false Bundles.two_hop_coloring c6i));
        Test.make ~name:"warm-mis-c12" (Staged.stage (solve Bundles.mis c12i));
        Test.make ~name:"cold-mis-c12"
          (Staged.stage (solve ~incremental:false Bundles.mis c12i));
      ]
  in
  let core_pruning =
    (* The core-guided pruning ablation: the same workloads with the
       sensitivity cores + cross-level subsumption on (the default) and
       off.  Wall-clock complements the states-explored ratios in the
       JSON's [search_states] section — pruning pays a sensitivity probe
       per expanded entry, so the time win is smaller than the state win
       but must not invert it.  Fixtures: the two largest ablate-bits
       searches, and the deepest a-star-phases schedule end to end. *)
    let min_search ~pruning g () =
      ignore
        (Min_search.minimal_successful
           ~solver:Anonet_algorithms.Rand_mis.algorithm g
           ~base:(Bit_assignment.empty (Graph.n g))
           ~pruning ~len:(Min_search.At_most 16) ())
    in
    let k4 = Gen.label_with_ints (Gen.cycle 4) in
    let k5 = Gen.label_with_ints (Gen.cycle 5) in
    let a_star ~pruning () =
      match A_star.solve ~gran:Bundles.two_hop_coloring c6i ~pruning () with
      | Ok _ -> ()
      | Error m -> failwith m
    in
    Test.make_grouped ~name:"core-pruning"
      [
        Test.make ~name:"min-search-mis-k4-pruned"
          (Staged.stage (min_search ~pruning:true k4));
        Test.make ~name:"min-search-mis-k4-exhaustive"
          (Staged.stage (min_search ~pruning:false k4));
        Test.make ~name:"min-search-mis-k5-pruned"
          (Staged.stage (min_search ~pruning:true k5));
        Test.make ~name:"min-search-mis-k5-exhaustive"
          (Staged.stage (min_search ~pruning:false k5));
        Test.make ~name:"a-star-2hop-c6-pruned"
          (Staged.stage (a_star ~pruning:true));
        Test.make ~name:"a-star-2hop-c6-exhaustive"
          (Staged.stage (a_star ~pruning:false));
      ]
  in
  let huge_graphs =
    (* Million-node-scale graph machinery, measured at n = 10^5 where
       bechamel still gets several samples per quota.  The legacy row
       replicates the pre-CSR [Graph.create] pipeline byte for byte
       (Hashtbl-of-tuples dedup, per-node bucket lists, List.sort,
       Array.of_list) against the same materialized edge list the CSR row
       consumes, so the pair isolates exactly the representation swap; CI
       asserts legacy/csr >= 5x.  The generate rows measure the streaming
       emitters end to end (no edge list at all), and the simulate row the
       flat executor's per-round throughput over the CSR layout. *)
    let hn = 100_000 in
    let hp = 8.0 /. float_of_int (hn - 1) in
    (* The fixtures (a 10^5-node graph plus its materialized edge list,
       ~25 MB) are forced lazily, not built here: resident in the major
       heap they would tax every GC slice paid by the nanosecond-scale
       rows of the other groups — bechamel measures groups in list order
       and this group runs last, so forcing on first use keeps the rest
       of the suite exactly as heavy as before this group existed. *)
    let fixtures =
      lazy
        (let hg = Gen.random_connected ~seed:1 hn hp in
         hg, Graph.edges hg, Array.make hn Label.Unit)
    in
    let scratch = Anonet_runtime.Executor.Scratch.create () in
    let bit ~node ~round = Prng.hash2 (node + 1) round land 1 = 1 in
    Test.make_grouped ~name:"huge-graphs"
      [
        Test.make ~name:"build-csr-gnp-1e5"
          (Staged.stage (fun () ->
               let _, hedges, hlabels = Lazy.force fixtures in
               Graph.create ~n:hn ~edges:hedges ~labels:hlabels));
        Test.make ~name:"build-legacy-gnp-1e5"
          (Staged.stage (fun () ->
               let _, hedges, _ = Lazy.force fixtures in
               legacy_adjacency ~n:hn hedges));
        Test.make ~name:"generate-gnp-1e5"
          (Staged.stage (fun () -> Gen.random_connected ~seed:1 hn hp));
        Test.make ~name:"generate-regular-d8-1e5"
          (Staged.stage (fun () -> Gen.random_regular ~seed:2 hn 8));
        Test.make ~name:"simulate-10rounds-mis-gnp-1e5"
          (Staged.stage (fun () ->
               let hg, _, _ = Lazy.force fixtures in
               Anonet_runtime.Executor.simulate_flat ~scratch
                 Anonet_algorithms.Rand_mis.algorithm hg ~bit ~len:10));
      ]
  in
  Test.make_grouped ~name:"anonet"
    [
      fig1;
      fig2;
      fig3;
      searches;
      pipeline;
      substrates;
      views_intern;
      faults;
      a_star_phases;
      core_pruning;
      huge_graphs;
    ]

let analyze_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:true () in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  (Analyze.merge ols instances results, instances)

let run_benchmarks () =
  header "Bechamel micro-benchmarks (monotonic clock per run)";
  let results, instances = analyze_benchmarks () in
  List.iter (fun v -> Bechamel_notty.Unit.add v (Measure.unit v)) instances;
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)

(* ------------------------------------------------------------------ *)
(* JSON telemetry: bench-json PATH                                     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/inf literals; a measurement that failed to fit maps to
   null so downstream tooling sees "missing", not a parse error. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* Flatten the merged OLS table: one (test, ns/run, r²) row per bechamel
   test, sorted by name for stable diffs. *)
let ols_rows results =
  Hashtbl.fold
    (fun _measure by_test acc ->
      Hashtbl.fold
        (fun name ols acc ->
          let ns_per_run =
            match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
          in
          let r_square =
            match Analyze.OLS.r_square ols with Some r -> r | None -> nan
          in
          (name, ns_per_run, r_square) :: acc)
        by_test acc)
    results []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* Wall-clock scaling of Pool.map on a batch of independent replicas of
   the hot workloads (the ablate-bits searches and the decouple pipeline
   rows).  Speedups only materialize on multicore hosts — the JSON
   records [domains_available] so a 1-core CI row is read as what it is. *)
let pool_scaling_rows () =
  let k5 = Gen.label_with_ints (Gen.cycle 5) in
  let k4 = Gen.label_with_ints (Gen.cycle 4) in
  let min_search g () =
    ignore
      (Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
         g
         ~base:(Bit_assignment.empty (Graph.n g))
         ~len:(Min_search.At_most 16) ())
  in
  let workloads =
    [ "ablate-bits", "min-search-mis-k5", min_search k5;
      "ablate-bits", "min-search-mis-k4", min_search k4;
      ( "decouple", "direct-rand-mis-petersen",
        fun () ->
          ignore
            (Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
               ~seed:5 ()) );
      ( "decouple", "decoupled-mis-petersen",
        fun () ->
          ignore
            (Decouple.solve ~gran:Bundles.mis (Gen.petersen ()) ~seed:5
               ~stage_two:
                 (Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis)
               ()) );
    ]
  in
  let batch_size = 8 in
  List.concat_map
    (fun (group, name, task) ->
      let batch = Array.make batch_size task in
      let time domains =
        Pool.with_pool ~domains (fun p ->
            let t0 = Unix.gettimeofday () in
            ignore (Pool.map p (fun f -> f ()) batch);
            Unix.gettimeofday () -. t0)
      in
      ignore (time 1) (* warm up: page in the code paths once *);
      let t1 = time 1 in
      List.map
        (fun domains ->
          let t = if domains = 1 then t1 else time domains in
          (group, name, domains, t, t1 /. t))
        [ 1; 2; 4 ])
    workloads

(* Allocation telemetry: GC word deltas per run of the hot workloads, the
   direct measure the flat-memory representations optimize.  [minor_words]
   counts all allocation (the flat hot paths' target metric);
   [major_words] counts what survives or is allocated large.  Measured
   over [iters] runs after one warm-up so per-process caches (layouts,
   interned views, candidate memos) don't pollute the per-run figure. *)
let alloc_rows () =
  let k5 = Gen.label_with_ints (Gen.cycle 5) in
  let k4 = Gen.label_with_ints (Gen.cycle 4) in
  let min_search g () =
    ignore
      (Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
         g
         ~base:(Bit_assignment.empty (Graph.n g))
         ~len:(Min_search.At_most 16) ())
  in
  let c6i = c6_instance () in
  let workloads =
    [ "ablate-bits", "min-search-mis-k4", 20, min_search k4;
      "ablate-bits", "min-search-mis-k5", 5, min_search k5;
      ( "a-star-phases", "warm-mis-c6", 20,
        fun () ->
          match A_star.solve ~gran:Bundles.mis c6i () with
          | Ok _ -> ()
          | Error m -> failwith m );
      ( "a-star-phases", "cold-mis-c6", 20,
        fun () ->
          match A_star.solve ~gran:Bundles.mis c6i ~incremental:false () with
          | Ok _ -> ()
          | Error m -> failwith m );
      ( "decouple", "direct-rand-mis-petersen", 20,
        fun () ->
          ignore
            (Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
               ~seed:5 ()) );
    ]
  in
  List.map
    (fun (group, name, iters, task) ->
      task () (* warm up: layouts, interned arenas, candidate memos *);
      (* [Gc.minor_words] reads the exact per-domain allocation counter;
         [quick_stat.minor_words] is only refreshed at GC slices, so a
         workload too small to trigger a minor collection would read 0. *)
      let m0 = Gc.minor_words () in
      let s0 = Gc.quick_stat () in
      for _ = 1 to iters do
        task ()
      done;
      let m1 = Gc.minor_words () in
      let s1 = Gc.quick_stat () in
      let per d = d /. float_of_int iters in
      ( group, name,
        per (m1 -. m0),
        per (s1.Gc.major_words -. s0.Gc.major_words) ))
    workloads

(* Search-effort telemetry for the core-guided pruning ablation: exact
   [states_explored] counts with pruning on and off over the ablate-bits
   fixture family.  Deterministic — these are state-space sizes, not
   timings — so CI can assert the reduction ratio (>= 2x on k4/k5)
   without a host guard. *)
let search_states_rows () =
  List.map
    (fun k ->
      let g =
        Gen.label_with_ints (if k = 2 then Gen.path 2 else Gen.cycle k)
      in
      let states ~pruning =
        match
          Min_search.minimal_successful
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty k) ~pruning
            ~len:(Min_search.At_most 16) ()
        with
        | Some f -> f.Min_search.states_explored
        | None -> failwith (Printf.sprintf "min-search-mis-k%d found nothing" k)
      in
      let pruned = states ~pruning:true in
      let exhaustive = states ~pruning:false in
      ( Printf.sprintf "min-search-mis-k%d" k,
        pruned, exhaustive,
        float_of_int exhaustive /. float_of_int pruned ))
    [ 2; 3; 4; 5 ]

(* One-shot wall-clock rows for the graph sizes bechamel cannot sample
   repeatedly: build (streaming generate into the CSR builder) and a
   10-round flat simulation at n = 10^5 and 10^6.  Single measurements —
   at seconds per run the sampling noise is far below the 2-orders-of-
   magnitude effects these rows exist to witness. *)
let huge_one_shot ~tag ~n ~avg_degree ~seed ~rounds =
  let p = avg_degree /. float_of_int (n - 1) in
  let t0 = Unix.gettimeofday () in
  let g = Gen.random_connected ~seed n p in
  let build_s = Unix.gettimeofday () -. t0 in
  let scratch = Anonet_runtime.Executor.Scratch.create () in
  let bit ~node ~round = Prng.hash2 (node + 1) round land 1 = 1 in
  let t1 = Unix.gettimeofday () in
  let rounds_run =
    match
      Anonet_runtime.Executor.simulate_flat ~scratch
        Anonet_algorithms.Rand_mis.algorithm g ~bit ~len:rounds
    with
    | Some (_, r, _) -> r
    | None -> failwith "huge: rand_mis has no flat path"
  in
  let sim_s = Unix.gettimeofday () -. t1 in
  (tag, n, Graph.num_edges g, build_s, rounds_run, sim_s)

let huge_rows () =
  [
    huge_one_shot ~tag:"gnp-1e5" ~n:100_000 ~avg_degree:8.0 ~seed:1 ~rounds:10;
    huge_one_shot ~tag:"gnp-1e6" ~n:1_000_000 ~avg_degree:8.0 ~seed:1 ~rounds:10;
  ]

(* A metrics snapshot of the instrumented pipeline — a Las-Vegas solve,
   an A_infinity derandomization and a warm A* derandomization against a
   live registry — so BENCH.json records the work performed (rounds,
   messages, attempts, search states, phase-cache traffic) next to the
   timings.  [Metrics.render_json] is a complete single-line
   JSON object; it embeds verbatim as the "metrics" value. *)
let metrics_snapshot_json () =
  let registry = Metrics.create () in
  let obs = Obs.make ~metrics:registry () in
  let ctx = Run_ctx.make ~obs () in
  (match
     Las_vegas.solve_msg ~ctx Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
       ~seed:5 ()
   with
  | Ok _ -> ()
  | Error m -> failwith m);
  (match A_infinity.solve ~ctx ~gran:Bundles.mis (cycle_mod_colors 12 3) () with
  | Ok _ -> ()
  | Error m -> failwith m);
  (* An A* derandomization with the warm phase engine, so the snapshot
     carries the cache.search counter family next to search.* . *)
  (match A_star.solve ~ctx ~gran:Bundles.mis (c6_instance ()) () with
  | Ok _ -> ()
  | Error m -> failwith m);
  (* Process-lifetime cache totals (the cache.view and cache.encode
     counter families) join the snapshot; published exactly once per
     registry, right before it. *)
  Interned.publish_metrics obs;
  String.trim (Metrics.render_json (Metrics.snapshot registry))

(* The commit the snapshot describes, for the bench/history trajectory.
   Best-effort: outside a git checkout (a release tarball) the field is
   "unknown" and the history step simply isn't used. *)
let git_short_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic, line with
    | Unix.WEXITED 0, sha when sha <> "" -> sha
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let run_bench_json ?history path =
  header "Bechamel micro-benchmarks -> JSON telemetry";
  let results, _instances = analyze_benchmarks () in
  let tests = ols_rows results in
  Printf.printf "measured %d tests; timing pool scaling (domains 1/2/4)...\n%!"
    (List.length tests);
  let scaling = pool_scaling_rows () in
  Printf.printf "measuring GC allocation deltas...\n%!";
  let allocs = alloc_rows () in
  Printf.printf "counting search states (pruning ablation)...\n%!";
  let search_states = search_states_rows () in
  Printf.printf "timing huge graphs (one-shot, n = 1e5 / 1e6)...\n%!";
  let huge = huge_rows () in
  let sha = git_short_sha () in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n";
  (* Schema 5 adds the "huge" array (one-shot build/simulate wall clock at
     n = 10^5/10^6); schema 4 added "search_states".  Readers that ignore
     unknown keys — the regression gate among them — stay compatible with
     mixed-schema histories. *)
  Buffer.add_string buf "  \"schema\": \"anonet-bench/5\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"commit\": \"%s\",\n" (json_escape sha));
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_at\": \"%s\",\n" (iso8601_now ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_available\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"metrics\": %s,\n" (metrics_snapshot_json ()));
  Buffer.add_string buf "  \"tests\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }%s\n"
           (json_escape name) (json_float ns) (json_float r2)
           (if i = List.length tests - 1 then "" else ",")))
    tests;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"pool_scaling\": [\n";
  List.iteri
    (fun i (group, name, domains, wall_s, speedup) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"group\": \"%s\", \"workload\": \"%s\", \"domains\": %d, \
            \"wall_s\": %s, \"speedup_vs_1\": %s }%s\n"
           (json_escape group) (json_escape name) domains (json_float wall_s)
           (json_float speedup)
           (if i = List.length scaling - 1 then "" else ",")))
    scaling;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"allocs\": [\n";
  List.iteri
    (fun i (group, name, minor, major) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"group\": \"%s\", \"workload\": \"%s\", \
            \"minor_words_per_run\": %s, \"major_words_per_run\": %s }%s\n"
           (json_escape group) (json_escape name) (json_float minor)
           (json_float major)
           (if i = List.length allocs - 1 then "" else ",")))
    allocs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"search_states\": [\n";
  List.iteri
    (fun i (name, pruned, exhaustive, ratio) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workload\": \"%s\", \"states_pruned\": %d, \
            \"states_exhaustive\": %d, \"ratio\": %s }%s\n"
           (json_escape name) pruned exhaustive (json_float ratio)
           (if i = List.length search_states - 1 then "" else ",")))
    search_states;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"huge\": [\n";
  List.iteri
    (fun i (tag, n, m, build_s, rounds, sim_s) ->
      let per_round_ns =
        if rounds > 0 then sim_s *. 1e9 /. float_of_int rounds else nan
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workload\": \"%s\", \"nodes\": %d, \"edges\": %d, \
            \"build_s\": %s, \"sim_rounds\": %d, \"sim_s\": %s, \
            \"ns_per_round\": %s }%s\n"
           (json_escape tag) n m (json_float build_s) rounds
           (json_float sim_s) (json_float per_round_ns)
           (if i = List.length huge - 1 then "" else ",")))
    huge;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  let contents = Buffer.contents buf in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d tests, %d pool-scaling rows)\n" path
    (List.length tests) (List.length scaling);
  (* Append the snapshot to the persistent bench trajectory: one
     BENCH_<shortsha>.json per commit, so successive PRs accumulate a
     comparable series that the CI regression gate diffs against. *)
  match history with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let hpath = Filename.concat dir (Printf.sprintf "BENCH_%s.json" sha) in
    let oc = open_out hpath in
    output_string oc contents;
    close_out oc;
    Printf.printf "appended history snapshot %s\n" hpath

let run_harness () =
  List.iter
    (Anonet_experiments.Experiments.render stdout)
    (Anonet_experiments.Experiments.run_all ())

(* CI smoke for the million-node pipeline: generate a seeded G(n, p) with
   the given average degree, run a fixed number of flat rounds, and emit
   one JSON line — run under `ulimit -v` and a wall-clock cap by the
   workflow.  Exits non-zero if the flat path declines or the graph comes
   out empty, so a silent fallback to the boxed path cannot pass. *)
let run_huge_smoke n avg_degree seed rounds =
  let (tag, n, m, build_s, rounds_run, sim_s) =
    huge_one_shot
      ~tag:(Printf.sprintf "gnp-n%d-d%g" n avg_degree)
      ~n ~avg_degree ~seed ~rounds
  in
  if m < n - 1 then failwith "huge-smoke: generated graph is too sparse";
  if rounds_run < 1 then failwith "huge-smoke: no rounds executed";
  Printf.printf
    "{ \"workload\": \"%s\", \"nodes\": %d, \"edges\": %d, \"build_s\": %s, \
     \"sim_rounds\": %d, \"sim_s\": %s }\n"
    (json_escape tag) n m (json_float build_s) rounds_run (json_float sim_s)

let () =
  match Array.to_list Sys.argv with
  | _ :: "harness" :: _ -> run_harness ()
  | _ :: "bench" :: _ -> run_benchmarks ()
  | _ :: "bench-json" :: path :: "--history" :: dir :: _ ->
    run_bench_json ~history:dir path
  | _ :: "bench-json" :: path :: _ -> run_bench_json path
  | _ :: "bench-json" :: [] ->
    prerr_endline "usage: main.exe bench-json PATH [--history DIR]";
    exit 2
  | _ :: "huge-smoke" :: n :: deg :: seed :: rounds :: _ ->
    run_huge_smoke (int_of_string n) (float_of_string deg) (int_of_string seed)
      (int_of_string rounds)
  | _ :: "huge-smoke" :: _ ->
    prerr_endline "usage: main.exe huge-smoke N AVG_DEGREE SEED ROUNDS";
    exit 2
  | _ ->
    run_harness ();
    run_benchmarks ()
